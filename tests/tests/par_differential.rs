//! Differential test: sequential vs. sharded execution of proper-hom folds.
//!
//! `ExecBackend::Vm { threads }` promises that the worker-pool width is
//! pure execution strategy: **identical `Value` results and byte-identical
//! `EvalStats`** for every thread count on every successful evaluation, and
//! matching error kinds on failures (`srl-core::parallel` documents how the
//! ordered shard merge reconstructs the sequential counters). This suite
//! drives `threads = 1` against a multi-thread pool over every srl-bench
//! query workload (E1–E9), verifies the parallel path actually *engages*
//! where it should (via the `Evaluator::parallel_folds` diagnostic) and
//! provably stays out where it must (order-sensitive folds, degenerate
//! shard counts), and stresses the budget-limit paths.

use std::sync::Arc;

use srl_core::dsl::*;
use srl_core::{
    Dialect, Env, EvalError, EvalLimits, EvalStats, Evaluator, ExecBackend, Expr, Lambda, Program,
    Value,
};
use srl_integration_tests::atom_set;
use srl_stdlib::derived::{difference, forall, intersection, map_set, union};

/// The pool width the parallel side of every differential pair runs with.
/// Wider than the container's core count on purpose: correctness must not
/// depend on shards actually running concurrently.
const THREADS: usize = 4;

/// Runs `f` under the sequential VM and the pooled VM over one shared
/// compiled program; returns the two outcomes plus the pooled evaluator's
/// parallel-fold count.
#[allow(clippy::type_complexity)]
fn both(
    program: &Program,
    limits: EvalLimits,
    threads: usize,
    mut f: impl FnMut(&mut Evaluator) -> Result<Value, EvalError>,
) -> (
    Result<(Value, EvalStats), EvalError>,
    Result<(Value, EvalStats), EvalError>,
    u64,
) {
    let compiled = Arc::new(program.compile());
    let mut run = |backend: ExecBackend| {
        let mut ev = Evaluator::with_compiled(program, Arc::clone(&compiled), limits)
            .expect("compiled from this program")
            .with_backend(backend);
        let result = f(&mut ev).map(|v| (v, *ev.stats()));
        (result, ev.parallel_folds())
    };
    let (seq, seq_folds) = run(ExecBackend::vm());
    assert_eq!(seq_folds, 0, "threads=1 must never shard");
    let (par, par_folds) = run(ExecBackend::vm_with_threads(threads));
    (seq, par, par_folds)
}

/// Asserts value + stats byte-identity between 1 and `THREADS` threads;
/// returns the value and whether any fold was sharded.
fn assert_identical(
    program: &Program,
    limits: EvalLimits,
    label: &str,
    f: impl FnMut(&mut Evaluator) -> Result<Value, EvalError>,
) -> (Value, u64) {
    let (seq, par, par_folds) = both(program, limits, THREADS, f);
    let (seq_value, seq_stats) = seq.unwrap_or_else(|e| panic!("{label}: sequential failed: {e}"));
    let (par_value, par_stats) = par.unwrap_or_else(|e| panic!("{label}: parallel failed: {e}"));
    assert_eq!(seq_value, par_value, "{label}: values differ");
    assert_eq!(seq_stats, par_stats, "{label}: EvalStats differ");
    (seq_value, par_folds)
}

fn assert_expr_identical(program: &Program, expr: &Expr, env: &Env, label: &str) -> (Value, u64) {
    assert_identical(program, EvalLimits::benchmark(), label, |ev| {
        ev.eval(expr, env)
    })
}

/// Asserts both thread counts fail with the same error kind.
fn assert_same_error(
    program: &Program,
    limits: EvalLimits,
    label: &str,
    f: impl FnMut(&mut Evaluator) -> Result<Value, EvalError>,
) {
    let (seq, par, _) = both(program, limits, THREADS, f);
    let seq_err = match seq {
        Err(e) => e,
        Ok((v, _)) => panic!("{label}: sequential unexpectedly succeeded with {v}"),
    };
    let par_err = match par {
        Err(e) => e,
        Ok((v, _)) => panic!("{label}: parallel unexpectedly succeeded with {v}"),
    };
    assert_eq!(
        std::mem::discriminant(&seq_err),
        std::mem::discriminant(&par_err),
        "{label}: error kinds differ (seq: {seq_err:?}, par: {par_err:?})"
    );
}

// ---------------------------------------------------------------------------
// The srl-bench query workloads, E1–E9: thread count must be unobservable.
// ---------------------------------------------------------------------------

#[test]
fn e1_apath_agrees() {
    use srl_stdlib::agap::{apath_program, names};
    use workloads::altgraph::AlternatingGraph;

    let program = apath_program();
    for n in [4usize, 6] {
        let graph = AlternatingGraph::random(n, 0.25, 7 + n as u64);
        let args = [graph.nodes_value(), graph.edges_value(), graph.ands_value()];
        assert_identical(&program, EvalLimits::benchmark(), "E1 APATH", |ev| {
            ev.call(names::APATH, &args)
        });
    }
}

#[test]
fn e2_powerset_agrees() {
    use srl_stdlib::blowup::{names, powerset_program};

    let program = powerset_program();
    for n in [0u64, 1, 3, 8] {
        let input = atom_set(0..n);
        let (v, par_folds) =
            assert_identical(&program, EvalLimits::default(), "E2 powerset", |ev| {
                ev.call(names::POWERSET, std::slice::from_ref(&input))
            });
        assert_eq!(v.len(), Some(1 << n));
        if n == 8 {
            // The headline assertion of the interprocedural summary: sift's
            // call-threaded fold (through finsert's spine) is proved a
            // proper hom and actually reaches the pool once the inner sets
            // clear the work threshold.
            assert!(
                par_folds > 0,
                "E2 n=8 must engage the pool (call-threaded spine proved), got 0 sharded folds"
            );
        }
    }
}

#[test]
fn e2_powerset_is_identical_across_pool_widths() {
    use srl_stdlib::blowup::{names, powerset_program};

    // Byte-identity must hold at every pool width, not just the suite's
    // default pair: 2 and 4 threads partition the inner sift folds
    // differently, so each width exercises a different merge shape.
    let program = powerset_program();
    let input = atom_set(0..8u64);
    let mut outcomes = Vec::new();
    for threads in [1usize, 2, 4] {
        let (seq, par, par_folds) = both(&program, EvalLimits::default(), threads.max(2), |ev| {
            ev.call(names::POWERSET, std::slice::from_ref(&input))
        });
        let which = if threads == 1 { seq } else { par };
        let (value, stats) = which.unwrap_or_else(|e| panic!("E2 threads={threads} failed: {e}"));
        if threads > 1 {
            assert!(par_folds > 0, "E2 threads={threads} must shard");
        }
        outcomes.push((value, stats));
    }
    let (v1, s1) = &outcomes[0];
    for (i, (v, s)) in outcomes.iter().enumerate().skip(1) {
        assert_eq!(v1, v, "E2 value differs at width index {i}");
        assert_eq!(s1, s, "E2 EvalStats differ at width index {i}");
    }
}

#[test]
fn e3_basrl_arithmetic_agrees() {
    use srl_stdlib::arith::{arithmetic_program, domain, names};

    let program = arithmetic_program();
    let d = domain(16);
    for (name, extra) in [
        (names::ADD, vec![5u64, 4]),
        (names::MULT, vec![3, 4]),
        (names::BIT, vec![1, 5]),
    ] {
        let mut args = vec![d.clone()];
        args.extend(extra.iter().map(|&x| Value::atom(x)));
        assert_identical(&program, EvalLimits::benchmark(), name, |ev| {
            ev.call(name, &args)
        });
    }
}

#[test]
fn e4_permutation_product_agrees() {
    use srl_stdlib::perm::{names, padded_domain, perm_program};
    use workloads::permutation::IteratedProductInstance;

    let program = perm_program();
    let n = 6usize;
    let instance = IteratedProductInstance::random(n, n, 11 + n as u64);
    let args = [
        padded_domain(&instance),
        instance.to_srl_value(),
        Value::atom(2),
    ];
    assert_identical(&program, EvalLimits::benchmark(), "E4 IP", |ev| {
        ev.call(names::IP, &args)
    });
}

#[test]
fn e5_tc_dtc_agree_and_shard() {
    use srl_bench::queries;
    use workloads::digraph::Digraph;

    let program = Program::new(Dialect::full());
    for n in [6usize, 14] {
        let g = Digraph::random(n, 2.0 / n as f64, 23 + n as u64);
        let env = Env::new()
            .bind("D", g.vertices_value())
            .bind("E", g.edges_value());
        for (label, expr) in [
            ("E5 TC", queries::tc_query()),
            ("E5 DTC", queries::dtc_query()),
        ] {
            let (_, par_folds) = assert_identical(&program, EvalLimits::benchmark(), label, |ev| {
                let lowered = ev.lower(&expr, &env);
                ev.eval_lowered(&lowered, &env)
            });
            // At the report's largest size the select-over-cartesian folds
            // clear the work threshold: the headline workload really runs
            // sharded, it is not quietly falling back to sequential.
            if n == 14 {
                assert!(par_folds > 0, "{label}: expected sharded folds at n=14");
            }
        }
    }
}

#[test]
fn e6_primrec_and_lrl_doubling_agree() {
    use machines::primrec::library;
    use srl_stdlib::blowup::{lrl_doubling_program, names as blow_names};
    use srl_stdlib::primrec_compile::{compile, encode_nat};

    let add = compile(&library::add()).expect("add compiles");
    let args = [encode_nat(5), encode_nat(3)];
    let entry = add.entry.clone();
    assert_identical(&add.program, EvalLimits::benchmark(), "E6 PR add", |ev| {
        ev.call(&entry, &args)
    });

    let doubling = lrl_doubling_program();
    let input = Value::list((0..5u64).map(Value::atom));
    assert_identical(&doubling, EvalLimits::default(), "E6 LRL doubling", |ev| {
        ev.call(blow_names::DOUBLING, std::slice::from_ref(&input))
    });
}

#[test]
fn e7_tm_simulation_agrees() {
    use machines::tm::library::{even_parity, SYM_A, SYM_B};
    use srl_stdlib::tm_sim::{compile, encode_input, names, position_domain};

    let program = compile(&even_parity());
    for n in [4usize, 16] {
        let input: Vec<u8> = (0..n)
            .map(|i| if i % 3 == 0 { SYM_A } else { SYM_B })
            .collect();
        let args = [position_domain(n), encode_input(&input)];
        assert_identical(&program, EvalLimits::benchmark(), "E7 accepts", |ev| {
            ev.call(names::ACCEPTS, &args)
        });
    }
}

#[test]
fn e8_order_dependence_probes_agree() {
    use srl_stdlib::hom;

    let program = Program::srl();
    let env = Env::new()
        .bind("S", atom_set([0, 2, 4, 6]))
        .bind("P", atom_set([6]));
    assert_expr_identical(
        &program,
        &hom::purple_first(var("S"), var("P")),
        &env,
        "E8 purple_first",
    );
    assert_expr_identical(&program, &hom::even(var("S")), &env, "E8 even");
}

#[test]
fn e9_relational_queries_agree() {
    use srl_bench::queries;
    use workloads::tables::CompanyDatabase;

    let program = Program::new(Dialect::full());
    let db = CompanyDatabase::generate(64, 16, 4, 47);
    let env = Env::new()
        .bind("EMP", db.employees_value())
        .bind("DEPT", db.departments_value());
    assert_expr_identical(&program, &queries::company_join(), &env, "E9 join");
    assert_expr_identical(
        &program,
        &queries::employees_in_department(db.departments[0].id),
        &env,
        "E9 select/project",
    );
}

// ---------------------------------------------------------------------------
// Engagement: the hom kinds really shard (per kind), proven by the
// diagnostic counter — and the stats still match byte-for-byte.
// ---------------------------------------------------------------------------

/// A set big and expensive enough that every hom kind clears
/// `PAR_WORK_THRESHOLD` (the membership predicate hides a nested fold, so
/// the static unit cost is high).
fn big_env() -> Env {
    Env::new()
        .bind("S", atom_set((0..96).map(|i| i * 3)))
        .bind("T", atom_set((0..48).map(|i| i * 5)))
}

#[test]
fn each_hom_kind_shards_and_stays_identical() {
    let program = Program::srl();
    let env = big_env();
    let cases: Vec<(&str, Expr)> = vec![
        // Filter: select(S, member(x, T)) — intersection's fused shape.
        ("filter", intersection(var("S"), var("T"))),
        ("filter-negated", difference(var("S"), var("T"))),
        // BoolAcc: forall(S, member(x, T)).
        (
            "bool-acc",
            forall(
                var("S"),
                lam("x", "t", srl_stdlib::derived::member(var("x"), var("t"))),
                var("T"),
            ),
        ),
        // InsertApp: map with a membership test inside the built tuple.
        (
            "insert-app",
            map_set(
                var("S"),
                lam(
                    "x",
                    "t",
                    tuple([var("x"), srl_stdlib::derived::member(var("x"), var("t"))]),
                ),
                var("T"),
            ),
        ),
        // Monotone: branching insert bodies keep the spine shape.
        (
            "monotone",
            set_reduce(
                var("S"),
                lam(
                    "x",
                    "t",
                    tuple([var("x"), srl_stdlib::derived::member(var("x"), var("t"))]),
                ),
                lam(
                    "p",
                    "acc",
                    if_(
                        sel(var("p"), 2),
                        insert(tuple([sel(var("p"), 1), sel(var("p"), 1)]), var("acc")),
                        insert(sel(var("p"), 1), var("acc")),
                    ),
                ),
                empty_set(),
                var("T"),
            ),
        ),
    ];
    for (label, expr) in cases {
        let (_, par_folds) = assert_expr_identical(&program, &expr, &env, label);
        assert!(par_folds > 0, "{label}: parallel path did not engage");
    }
}

#[test]
fn named_atom_first_wins_survives_shard_merges() {
    // Equal-comparing values that differ only in display (named vs. plain
    // atoms): value equality cannot see the difference, so this test
    // compares the *printed* results. The projection collides every third
    // element onto the same atom rank under a different name; sequential
    // first-wins keeps the copy from the earliest element, and the ordered
    // shard merge must keep exactly the same copy across shard boundaries.
    let program = Program::srl();
    let pairs = Value::set(
        (0..1200u64)
            .map(|i| Value::tuple([Value::atom(i), Value::named_atom(i / 3, format!("v{i}"))])),
    );
    let env = Env::new().bind("S", pairs);
    let expr = map_set(var("S"), lam("x", "t", sel(var("x"), 2)), empty_set());
    let compiled = Arc::new(program.compile());
    let mut shown = Vec::new();
    for backend in [ExecBackend::vm(), ExecBackend::vm_with_threads(THREADS)] {
        let mut ev =
            Evaluator::with_compiled(&program, Arc::clone(&compiled), EvalLimits::benchmark())
                .expect("compiled from this program")
                .with_backend(backend);
        let v = ev.eval(&expr, &env).expect("projection evaluates");
        if backend != ExecBackend::vm() {
            assert!(ev.parallel_folds() > 0, "projection fold should shard");
        }
        shown.push(format!("{v}"));
    }
    assert_eq!(
        shown[0], shown[1],
        "displayed copies drifted across the merge"
    );
    assert!(shown[0].contains("v0#0"), "{}", shown[0]);
}

// ---------------------------------------------------------------------------
// Adversarial: order-sensitive folds must stay sequential.
// ---------------------------------------------------------------------------

/// Scan fold (keep-last-match): order-sensitive, `FoldClass::Ordered`.
fn scan_fold() -> Expr {
    set_reduce(
        var("T"),
        lam(
            "c",
            "p",
            tuple([sel(var("c"), 2), eq(sel(var("c"), 1), var("p"))]),
        ),
        lam(
            "pr",
            "acc",
            if_(sel(var("pr"), 2), sel(var("pr"), 1), var("acc")),
        ),
        atom(99),
        var("p"),
    )
}

/// Generic fold (cons-collect): order-sensitive, `FoldClass::Ordered`.
fn cons_collect_fold() -> Expr {
    set_reduce(
        var("S"),
        Lambda::identity(),
        lam("x", "acc", cons(var("x"), var("acc"))),
        empty_list(),
        empty_set(),
    )
}

#[test]
fn non_hom_folds_never_shard() {
    let program = Program::new(Dialect::full());
    let compiled = program.compile();

    // Compile-time: the disassembler shows the FoldClass the executor obeys.
    let scan_lowered = compiled.lower_expr(&scan_fold(), &["T", "p"]);
    let scan_text = srl_syntax::disasm_lowered(&compiled, &scan_lowered);
    assert!(
        scan_text.contains("reduce[scan") && scan_text.contains("class=ordered"),
        "scan fold must be classified ordered:\n{scan_text}"
    );
    let generic_lowered = compiled.lower_expr(&cons_collect_fold(), &["S"]);
    let generic_text = srl_syntax::disasm_lowered(&compiled, &generic_lowered);
    assert!(
        generic_text.contains("reduce[generic") && generic_text.contains("class=ordered"),
        "cons-collect fold must be classified ordered:\n{generic_text}"
    );
    // And the hom shapes really carry the splittable class.
    let filter_lowered = compiled.lower_expr(&intersection(var("S"), var("T")), &["S", "T"]);
    let filter_text = srl_syntax::disasm_lowered(&compiled, &filter_lowered);
    assert!(
        filter_text.contains("class=proper-hom"),
        "intersection must be classified proper-hom:\n{filter_text}"
    );

    // Run-time: even at a wide pool and large inputs the ordered folds
    // never engage the pool (and results match trivially).
    let tuples =
        Value::set((0..600u64).map(|i| Value::tuple([Value::atom(i), Value::atom(i * 2)])));
    let env = Env::new()
        .bind("T", tuples)
        .bind("p", Value::atom(17))
        .bind("S", atom_set(0..600));
    for (label, expr) in [("scan", scan_fold()), ("generic", cons_collect_fold())] {
        let (_, par_folds) = assert_expr_identical(&program, &expr, &env, label);
        assert_eq!(par_folds, 0, "{label}: ordered fold must not shard");
    }
}

// ---------------------------------------------------------------------------
// Shard-count edge cases and nested-fold stress under budgets.
// ---------------------------------------------------------------------------

#[test]
fn shard_count_edge_cases_agree() {
    let program = Program::srl();
    for n in [0u64, 1, 3] {
        // Fewer elements than threads (and the empty/singleton degenerate
        // cases): sequential fallback or degenerate sharding, either way
        // byte-identical.
        let env = Env::new()
            .bind("S", atom_set(0..n))
            .bind("T", atom_set(0..((n * 7) % 11)));
        for (label, expr) in [
            ("edge intersection", intersection(var("S"), var("T"))),
            ("edge union", union(var("S"), var("T"))),
            (
                "edge forall",
                forall(
                    var("S"),
                    lam("x", "t", srl_stdlib::derived::member(var("x"), var("t"))),
                    var("T"),
                ),
            ),
        ] {
            assert_expr_identical(&program, &expr, &env, &format!("{label} n={n}"));
        }
    }
    // One more: n exactly equal to the pool width.
    let env = Env::new()
        .bind("S", atom_set(0..THREADS as u64))
        .bind("T", atom_set(0..3));
    assert_expr_identical(
        &program,
        &intersection(var("S"), var("T")),
        &env,
        "n == threads",
    );
}

#[test]
fn nested_hom_folds_agree_under_limits() {
    // An outer monotone fold whose app runs an inner filter fold per
    // element: the outer fold shards, the inner folds run sequentially on
    // the workers — under a real budget, with byte-identical stats.
    let program = Program::srl();
    let expr = set_reduce(
        var("S"),
        lam("x", "t", intersection(var("t"), var("t"))),
        lam("inner", "acc", insert(var("inner"), var("acc"))),
        empty_set(),
        var("T"),
    );
    let env = Env::new()
        .bind("S", atom_set(0..64))
        .bind("T", atom_set(0..24));
    let limits = EvalLimits::default();
    let (_, par_folds) =
        assert_identical(&program, limits, "nested folds", |ev| ev.eval(&expr, &env));
    assert!(par_folds > 0, "outer fold should shard");

    // The same program against budgets that cross mid-fold: the error kind
    // must match the sequential run's (partial counters may differ).
    for (label, limits) in [
        (
            "nested step limit",
            EvalLimits::default().with_max_steps(5_000),
        ),
        (
            "nested size limit",
            EvalLimits::default().with_max_value_weight(40),
        ),
    ] {
        assert_same_error(&program, limits, label, |ev| ev.eval(&expr, &env));
    }
}

#[test]
fn limit_and_shape_error_kinds_agree() {
    let program = Program::srl();
    let env = big_env();
    // Shape error deep in a sharded fold: the app result of a bool-acc is
    // not a boolean for exactly one element.
    let poisoned = set_reduce(
        var("S"),
        lam(
            "x",
            "t",
            if_(
                eq(var("x"), atom(141)),
                tuple([var("x")]),
                srl_stdlib::derived::member(var("x"), var("t")),
            ),
        ),
        lam("h", "acc", or(var("h"), var("acc"))),
        bool_(false),
        var("T"),
    );
    assert_same_error(
        &program,
        EvalLimits::benchmark(),
        "poisoned bool-acc",
        |ev| ev.eval(&poisoned, &env),
    );

    // Step limit crossing inside a sharded filter fold.
    assert_same_error(
        &program,
        EvalLimits::default().with_max_steps(3_000),
        "sharded step limit",
        |ev| ev.eval(&intersection(var("S"), var("T")), &env),
    );
    // Allocation limit crossing inside a sharded map fold.
    assert_same_error(
        &program,
        EvalLimits::default().with_max_value_weight(64),
        "sharded size limit",
        |ev| {
            ev.eval(
                &map_set(
                    var("S"),
                    lam(
                        "x",
                        "t",
                        tuple([var("x"), srl_stdlib::derived::member(var("x"), var("t"))]),
                    ),
                    var("T"),
                ),
                &env,
            )
        },
    );
}

#[test]
fn tree_walk_still_matches_the_pooled_vm() {
    // Transitivity spot-check across the full engine matrix: tree-walk,
    // sequential VM, pooled VM — one workload, three engines, one answer.
    let program = Program::srl();
    let env = big_env();
    let expr = intersection(var("S"), var("T"));
    let compiled = Arc::new(program.compile());
    let mut results = Vec::new();
    for backend in [
        ExecBackend::TreeWalk,
        ExecBackend::vm(),
        ExecBackend::vm_with_threads(THREADS),
    ] {
        let mut ev =
            Evaluator::with_compiled(&program, Arc::clone(&compiled), EvalLimits::benchmark())
                .expect("compiled from this program")
                .with_backend(backend);
        let v = ev.eval(&expr, &env).expect("evaluates");
        results.push((v, *ev.stats()));
    }
    assert_eq!(results[0], results[1]);
    assert_eq!(results[1], results[2]);
}
