//! Dialects: which operators a program may use.
//!
//! The paper's theorems are all of the form "SRL, *with such-and-such
//! operators allowed/forbidden*, captures complexity class C". A [`Dialect`]
//! records exactly which optional operators are available; the checker in
//! [`crate::typecheck`] rejects programs that stray outside their dialect,
//! and the classifier in `srl-analysis` infers the smallest dialect a program
//! fits in.

use std::fmt;

/// Which optional operators are permitted, on top of the always-available
/// core (booleans, if-then-else, constants, tuples, selectors, equality on
/// equality types, `≤` on ordered types, `emptyset`, `insert`, `set-reduce`,
/// `choose`, `rest`, composition of definitions).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Dialect {
    /// Display name.
    pub name: &'static str,
    /// Allow the `new` operator (invented values / unbounded successor on the
    /// domain, Section 5).
    pub allow_new: bool,
    /// Allow list types, `cons`, `head`, `tail` and `list-reduce`
    /// (the LRL extension).
    pub allow_lists: bool,
    /// Allow natural-number constants and `succ` (the ℕ extension of
    /// Sections 3 and 5).
    pub allow_nat: bool,
    /// Allow `+` on naturals (safe inside P as long as `set of ℕ` is avoided;
    /// see the discussion before Proposition 3.13).
    pub allow_nat_add: bool,
    /// Allow `*` on naturals (only safe inside P if the accumulator does not
    /// use it, or one operand is constant; see Section 3).
    pub allow_nat_mul: bool,
    /// Maximum permitted set-height of any type in the program, if bounded.
    /// `Some(1)` is the paper's SRL; `None` is unrestricted SRL.
    pub max_set_height: Option<usize>,
    /// If true, every `set-reduce` accumulator must return a value of
    /// set-height 0 and bounded width (the BASRL restriction of Section 4).
    pub bounded_accumulator: bool,
}

impl Dialect {
    /// The paper's `SRL`: set-height at most 1, no invented values, no lists,
    /// no unbounded arithmetic. Captures P (Theorem 3.10).
    pub fn srl() -> Self {
        Dialect {
            name: "SRL",
            allow_new: false,
            allow_lists: false,
            allow_nat: false,
            allow_nat_add: false,
            allow_nat_mul: false,
            max_set_height: Some(1),
            bounded_accumulator: false,
        }
    }

    /// `BASRL`: SRL with accumulators restricted to bounded-width,
    /// set-height-0 tuples. Captures L (Theorem 4.13).
    pub fn basrl() -> Self {
        Dialect {
            name: "BASRL",
            bounded_accumulator: true,
            ..Dialect::srl()
        }
    }

    /// Unrestricted SRL (`u-SRL`): no set-height bound. With sets of
    /// unbounded width this captures the primitive recursive functions
    /// (Section 5).
    pub fn unrestricted() -> Self {
        Dialect {
            name: "u-SRL",
            max_set_height: None,
            ..Dialect::srl()
        }
    }

    /// `SRL + new`: SRL plus the `new` (invented value) operator.
    /// Captures PrimRec (Theorem 5.2).
    pub fn srl_new() -> Self {
        Dialect {
            name: "SRL+new",
            allow_new: true,
            max_set_height: None,
            ..Dialect::srl()
        }
    }

    /// `LRL`: list-reduce language — lists of unbounded length replace sets
    /// as the iterated collection. Captures PrimRec (Corollary 5.5).
    pub fn lrl() -> Self {
        Dialect {
            name: "LRL",
            allow_lists: true,
            max_set_height: None,
            ..Dialect::srl()
        }
    }

    /// SRL extended with naturals and addition but *without* `set of ℕ`;
    /// stays within P (discussion before Proposition 3.13).
    pub fn srl_with_addition() -> Self {
        Dialect {
            name: "SRL+ℕ+add",
            allow_nat: true,
            allow_nat_add: true,
            ..Dialect::srl()
        }
    }

    /// SRL extended with naturals, addition and multiplication. Only within P
    /// under the further restriction that accumulators do not multiply
    /// (enforced by `srl-analysis`, not by the checker).
    pub fn srl_with_arithmetic() -> Self {
        Dialect {
            name: "SRL+ℕ+arith",
            allow_nat: true,
            allow_nat_add: true,
            allow_nat_mul: true,
            ..Dialect::srl()
        }
    }

    /// Everything on: used by the evaluator's dynamically-typed entry points
    /// and by tests that build deliberately out-of-fragment programs.
    pub fn full() -> Self {
        Dialect {
            name: "full",
            allow_new: true,
            allow_lists: true,
            allow_nat: true,
            allow_nat_add: true,
            allow_nat_mul: true,
            max_set_height: None,
            bounded_accumulator: false,
        }
    }
}

impl Default for Dialect {
    fn default() -> Self {
        Dialect::srl()
    }
}

impl fmt::Display for Dialect {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn srl_is_height_one_and_closed() {
        let d = Dialect::srl();
        assert_eq!(d.max_set_height, Some(1));
        assert!(!d.allow_new);
        assert!(!d.allow_lists);
        assert!(!d.allow_nat);
        assert!(!d.bounded_accumulator);
    }

    #[test]
    fn basrl_adds_accumulator_restriction() {
        let d = Dialect::basrl();
        assert!(d.bounded_accumulator);
        assert_eq!(d.max_set_height, Some(1));
    }

    #[test]
    fn unrestricted_and_new_lift_height_bound() {
        assert_eq!(Dialect::unrestricted().max_set_height, None);
        assert_eq!(Dialect::srl_new().max_set_height, None);
        assert!(Dialect::srl_new().allow_new);
        assert!(Dialect::lrl().allow_lists);
    }

    #[test]
    fn arithmetic_dialects() {
        assert!(Dialect::srl_with_addition().allow_nat_add);
        assert!(!Dialect::srl_with_addition().allow_nat_mul);
        assert!(Dialect::srl_with_arithmetic().allow_nat_mul);
    }

    #[test]
    fn display_uses_name() {
        assert_eq!(Dialect::srl().to_string(), "SRL");
        assert_eq!(Dialect::basrl().to_string(), "BASRL");
        assert_eq!(Dialect::full().to_string(), "full");
    }

    #[test]
    fn default_is_srl() {
        assert_eq!(Dialect::default(), Dialect::srl());
    }
}
