//! Deterministic Turing machines.
//!
//! Proposition 6.2 of the paper simulates a DTIME(n) Turing machine by an SRL
//! expression of width 2 and depth 3 (and Corollary 6.3 generalises to
//! DTIME(nᵏ)). To reproduce that experiment we need an actual machine model
//! to compile from and to compare against: this module provides a
//! single-work-tape deterministic Turing machine with a read-only input tape,
//! a step-bounded runner, and a library of small machines (parity, palindrome
//! recognition over a unary-ish alphabet, copy) used by the tests and the E7
//! benchmark.
//!
//! The machine model deliberately mirrors the shape used in the paper's
//! simulation: one read-only input tape of length `n` and one work tape of
//! length `n` (for DTIME(n); the harness allocates `n^k` cells for DTIME(nᵏ)),
//! both with integer head positions, and a transition function keyed on
//! (state, input symbol under head 1, work symbol under head 2).

use std::collections::BTreeMap;
use std::fmt;

/// A tape symbol. `0` is reserved for the blank.
pub type Symbol = u8;

/// The blank symbol.
pub const BLANK: Symbol = 0;

/// A machine state, identified by index.
pub type State = u32;

/// A head movement.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Move {
    /// Move one cell to the left (clamped at the left end).
    Left,
    /// Stay in place.
    Stay,
    /// Move one cell to the right (clamped at the right end).
    Right,
}

impl Move {
    /// Applies the move to a head position on a tape of length `len`.
    /// Positions range over `0 ..= len`: position `len` is the "one past the
    /// end" cell, which always reads as blank and ignores writes — this is
    /// how a scan detects the end of its input.
    pub fn apply(self, pos: usize, len: usize) -> usize {
        match self {
            Move::Left => pos.saturating_sub(1),
            Move::Stay => pos,
            Move::Right => (pos + 1).min(len),
        }
    }
}

/// The action taken by one transition.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Action {
    /// Next state.
    pub next_state: State,
    /// Symbol written to the work tape under the work head.
    pub write: Symbol,
    /// Movement of the input head.
    pub input_move: Move,
    /// Movement of the work head.
    pub work_move: Move,
}

/// A deterministic Turing machine with a read-only input tape and one work
/// tape.
#[derive(Clone, Debug)]
pub struct TuringMachine {
    /// Human-readable name.
    pub name: String,
    /// Number of states; states are `0 .. num_states`.
    pub num_states: State,
    /// Start state.
    pub start_state: State,
    /// Accepting states.
    pub accept_states: Vec<State>,
    /// Rejecting states (halting, non-accepting). A machine also halts when
    /// no transition applies.
    pub reject_states: Vec<State>,
    /// Transition function keyed by (state, input symbol, work symbol).
    pub transitions: BTreeMap<(State, Symbol, Symbol), Action>,
}

/// The full configuration of a running machine.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Configuration {
    /// Current state.
    pub state: State,
    /// Input tape (never modified).
    pub input: Vec<Symbol>,
    /// Work tape contents.
    pub work: Vec<Symbol>,
    /// Input head position.
    pub input_head: usize,
    /// Work head position.
    pub work_head: usize,
    /// Number of steps taken so far.
    pub steps: u64,
}

/// Why a run stopped.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Halt {
    /// Stopped in an accepting state.
    Accept,
    /// Stopped in a rejecting state, or no transition applied.
    Reject,
    /// The step budget ran out before the machine halted.
    OutOfTime,
}

/// The result of running a machine.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RunResult {
    /// How the run ended.
    pub halt: Halt,
    /// The final configuration.
    pub final_config: Configuration,
    /// Every intermediate configuration if tracing was requested
    /// (configuration 0 is the initial one).
    pub trace: Option<Vec<Configuration>>,
}

impl TuringMachine {
    /// Creates an empty machine with the given number of states.
    pub fn new(name: impl Into<String>, num_states: State, start_state: State) -> Self {
        TuringMachine {
            name: name.into(),
            num_states,
            start_state,
            accept_states: Vec::new(),
            reject_states: Vec::new(),
            transitions: BTreeMap::new(),
        }
    }

    /// Marks states as accepting.
    pub fn with_accept(mut self, states: impl IntoIterator<Item = State>) -> Self {
        self.accept_states.extend(states);
        self
    }

    /// Marks states as rejecting.
    pub fn with_reject(mut self, states: impl IntoIterator<Item = State>) -> Self {
        self.reject_states.extend(states);
        self
    }

    /// Adds a transition.
    pub fn with_transition(
        mut self,
        state: State,
        input_sym: Symbol,
        work_sym: Symbol,
        action: Action,
    ) -> Self {
        self.transitions
            .insert((state, input_sym, work_sym), action);
        self
    }

    /// True iff `state` is accepting.
    pub fn is_accepting(&self, state: State) -> bool {
        self.accept_states.contains(&state)
    }

    /// True iff `state` is rejecting.
    pub fn is_rejecting(&self, state: State) -> bool {
        self.reject_states.contains(&state)
    }

    /// The largest symbol mentioned anywhere (used to size alphabets when the
    /// machine is compiled to SRL).
    pub fn max_symbol(&self) -> Symbol {
        self.transitions
            .iter()
            .flat_map(|((_, i, w), a)| [*i, *w, a.write])
            .max()
            .unwrap_or(BLANK)
    }

    /// Builds the initial configuration for `input`, with a work tape of
    /// `work_len` blank cells (at least 1).
    pub fn initial_configuration(&self, input: &[Symbol], work_len: usize) -> Configuration {
        Configuration {
            state: self.start_state,
            input: input.to_vec(),
            work: vec![BLANK; work_len.max(1)],
            input_head: 0,
            work_head: 0,
            steps: 0,
        }
    }

    /// Performs one step. Returns `None` if no transition applies.
    pub fn step(&self, config: &Configuration) -> Option<Configuration> {
        let input_sym = config
            .input
            .get(config.input_head)
            .copied()
            .unwrap_or(BLANK);
        let work_sym = config.work.get(config.work_head).copied().unwrap_or(BLANK);
        let action = self.transitions.get(&(config.state, input_sym, work_sym))?;
        let mut next = config.clone();
        next.state = action.next_state;
        if let Some(cell) = next.work.get_mut(config.work_head) {
            *cell = action.write;
        }
        next.input_head = action
            .input_move
            .apply(config.input_head, config.input.len());
        next.work_head = action.work_move.apply(config.work_head, config.work.len());
        next.steps += 1;
        Some(next)
    }

    /// Runs the machine for at most `max_steps` steps on `input`, with a work
    /// tape the same length as the input (the DTIME(n) setting of
    /// Proposition 6.2). Set `trace` to collect every configuration.
    pub fn run(&self, input: &[Symbol], max_steps: u64, trace: bool) -> RunResult {
        self.run_with_work_tape(input, input.len().max(1), max_steps, trace)
    }

    /// Runs the machine with an explicit work-tape length.
    pub fn run_with_work_tape(
        &self,
        input: &[Symbol],
        work_len: usize,
        max_steps: u64,
        trace: bool,
    ) -> RunResult {
        let mut config = self.initial_configuration(input, work_len);
        let mut history = if trace {
            vec![config.clone()]
        } else {
            Vec::new()
        };
        loop {
            if self.is_accepting(config.state) {
                return RunResult {
                    halt: Halt::Accept,
                    final_config: config,
                    trace: trace.then_some(history),
                };
            }
            if self.is_rejecting(config.state) {
                return RunResult {
                    halt: Halt::Reject,
                    final_config: config,
                    trace: trace.then_some(history),
                };
            }
            if config.steps >= max_steps {
                return RunResult {
                    halt: Halt::OutOfTime,
                    final_config: config,
                    trace: trace.then_some(history),
                };
            }
            match self.step(&config) {
                Some(next) => {
                    if trace {
                        history.push(next.clone());
                    }
                    config = next;
                }
                None => {
                    return RunResult {
                        halt: Halt::Reject,
                        final_config: config,
                        trace: trace.then_some(history),
                    }
                }
            }
        }
    }

    /// Convenience: does the machine accept `input` within `max_steps` steps?
    pub fn accepts(&self, input: &[Symbol], max_steps: u64) -> bool {
        self.run(input, max_steps, false).halt == Halt::Accept
    }
}

impl fmt::Display for TuringMachine {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "TM `{}` ({} states, {} transitions)",
            self.name,
            self.num_states,
            self.transitions.len()
        )
    }
}

/// Library of small machines used by tests, examples and the E7 benchmark.
pub mod library {
    use super::*;

    /// Symbols used by the library machines: 1 and 2 encode the binary
    /// alphabet {a, b}; 0 is the blank.
    pub const SYM_A: Symbol = 1;
    /// Second alphabet symbol.
    pub const SYM_B: Symbol = 2;

    /// A machine that accepts inputs containing an even number of `SYM_A`
    /// symbols. Runs in exactly `n` steps plus one: a single left-to-right
    /// scan — a canonical DTIME(n) machine.
    ///
    /// States: 0 = even seen so far, 1 = odd seen so far, 2 = accept,
    /// 3 = reject.
    pub fn even_parity() -> TuringMachine {
        let mut m = TuringMachine::new("even-parity", 4, 0)
            .with_accept([2])
            .with_reject([3]);
        for work in [BLANK, SYM_A, SYM_B] {
            // In state 0/1 reading A flips parity; reading B keeps it; reading
            // blank (end of input) halts.
            m = m
                .with_transition(
                    0,
                    SYM_A,
                    work,
                    Action {
                        next_state: 1,
                        write: work,
                        input_move: Move::Right,
                        work_move: Move::Stay,
                    },
                )
                .with_transition(
                    0,
                    SYM_B,
                    work,
                    Action {
                        next_state: 0,
                        write: work,
                        input_move: Move::Right,
                        work_move: Move::Stay,
                    },
                )
                .with_transition(
                    0,
                    BLANK,
                    work,
                    Action {
                        next_state: 2,
                        write: work,
                        input_move: Move::Stay,
                        work_move: Move::Stay,
                    },
                )
                .with_transition(
                    1,
                    SYM_A,
                    work,
                    Action {
                        next_state: 0,
                        write: work,
                        input_move: Move::Right,
                        work_move: Move::Stay,
                    },
                )
                .with_transition(
                    1,
                    SYM_B,
                    work,
                    Action {
                        next_state: 1,
                        write: work,
                        input_move: Move::Right,
                        work_move: Move::Stay,
                    },
                )
                .with_transition(
                    1,
                    BLANK,
                    work,
                    Action {
                        next_state: 3,
                        write: work,
                        input_move: Move::Stay,
                        work_move: Move::Stay,
                    },
                );
        }
        m
    }

    /// A machine that copies its input onto the work tape and then accepts.
    /// Takes exactly `n + 1` steps; used to check that work-tape contents are
    /// simulated correctly.
    ///
    /// States: 0 = copying, 1 = accept.
    pub fn copy_input() -> TuringMachine {
        let mut m = TuringMachine::new("copy-input", 2, 0).with_accept([1]);
        for sym in [SYM_A, SYM_B] {
            m = m.with_transition(
                0,
                sym,
                BLANK,
                Action {
                    next_state: 0,
                    write: sym,
                    input_move: Move::Right,
                    work_move: Move::Right,
                },
            );
        }
        m = m.with_transition(
            0,
            BLANK,
            BLANK,
            Action {
                next_state: 1,
                write: BLANK,
                input_move: Move::Stay,
                work_move: Move::Stay,
            },
        );
        m
    }

    /// A machine that accepts iff the input's last symbol is `SYM_A`
    /// (and rejects the empty input). A single left-to-right scan that
    /// remembers the last symbol seen in its state — another DTIME(n)
    /// workload with a different acceptance pattern from `even_parity`.
    ///
    /// States: 0 = nothing seen / last was b, 1 = last was a, 2 = accept,
    /// 3 = reject.
    pub fn ends_with_a() -> TuringMachine {
        let mut m = TuringMachine::new("ends-with-a", 4, 0)
            .with_accept([2])
            .with_reject([3]);
        for work in [BLANK, SYM_A, SYM_B] {
            m = m
                .with_transition(
                    0,
                    SYM_A,
                    work,
                    Action {
                        next_state: 1,
                        write: work,
                        input_move: Move::Right,
                        work_move: Move::Stay,
                    },
                )
                .with_transition(
                    0,
                    SYM_B,
                    work,
                    Action {
                        next_state: 0,
                        write: work,
                        input_move: Move::Right,
                        work_move: Move::Stay,
                    },
                )
                .with_transition(
                    0,
                    BLANK,
                    work,
                    Action {
                        next_state: 3,
                        write: work,
                        input_move: Move::Stay,
                        work_move: Move::Stay,
                    },
                )
                .with_transition(
                    1,
                    SYM_A,
                    work,
                    Action {
                        next_state: 1,
                        write: work,
                        input_move: Move::Right,
                        work_move: Move::Stay,
                    },
                )
                .with_transition(
                    1,
                    SYM_B,
                    work,
                    Action {
                        next_state: 0,
                        write: work,
                        input_move: Move::Right,
                        work_move: Move::Stay,
                    },
                )
                .with_transition(
                    1,
                    BLANK,
                    work,
                    Action {
                        next_state: 2,
                        write: work,
                        input_move: Move::Stay,
                        work_move: Move::Stay,
                    },
                );
        }
        m
    }

    /// Native recognizer for the language `aⁿbⁿ`, used as a baseline by
    /// examples; the classical single-tape machine for it runs in O(n²),
    /// which is the growth rate the Corollary 6.3 benchmark reproduces by
    /// giving linear machines an `n^k` step allowance.
    pub fn equal_blocks_accepts(input: &[Symbol]) -> bool {
        let n = input.len();
        if !n.is_multiple_of(2) {
            return false;
        }
        let half = n / 2;
        input[..half].iter().all(|&s| s == SYM_A) && input[half..].iter().all(|&s| s == SYM_B)
    }

    /// Encodes a boolean word over {a, b} as machine symbols.
    pub fn encode_word(word: &str) -> Vec<Symbol> {
        word.chars()
            .map(|c| if c == 'a' { SYM_A } else { SYM_B })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::library::*;
    use super::*;

    #[test]
    fn moves_clamp_at_tape_ends() {
        assert_eq!(Move::Left.apply(0, 10), 0);
        assert_eq!(Move::Left.apply(5, 10), 4);
        // The right move may step one past the end (the always-blank cell)…
        assert_eq!(Move::Right.apply(9, 10), 10);
        // …but no further.
        assert_eq!(Move::Right.apply(10, 10), 10);
        assert_eq!(Move::Right.apply(5, 10), 6);
        assert_eq!(Move::Stay.apply(5, 10), 5);
    }

    #[test]
    fn even_parity_accepts_even_number_of_a() {
        let m = even_parity();
        assert!(m.accepts(&encode_word(""), 100));
        assert!(m.accepts(&encode_word("aa"), 100));
        assert!(m.accepts(&encode_word("abab"), 100));
        assert!(m.accepts(&encode_word("bbbb"), 100));
        assert!(m.accepts(&encode_word("aab"), 100));
        assert!(!m.accepts(&encode_word("a"), 100));
        assert!(!m.accepts(&encode_word("ab"), 100));
        assert!(!m.accepts(&encode_word("baaab"), 100));
    }

    #[test]
    fn even_parity_runs_in_linear_time() {
        let m = even_parity();
        for n in [1usize, 4, 16, 64] {
            let input = vec![SYM_A; n];
            let r = m.run(&input, 10_000, false);
            assert!(
                r.final_config.steps as usize <= n + 1,
                "steps {} for n {}",
                r.final_config.steps,
                n
            );
        }
    }

    #[test]
    fn copy_input_copies() {
        let m = copy_input();
        let input = encode_word("abba");
        let r = m.run(&input, 100, false);
        assert_eq!(r.halt, Halt::Accept);
        assert_eq!(&r.final_config.work[..4], &input[..]);
    }

    #[test]
    fn copy_input_trace_has_step_per_symbol() {
        let m = copy_input();
        let input = encode_word("ab");
        let r = m.run(&input, 100, true);
        let trace = r.trace.unwrap();
        assert_eq!(trace.len() as u64, r.final_config.steps + 1);
        assert_eq!(trace[0].state, 0);
        assert_eq!(trace[0].steps, 0);
    }

    #[test]
    fn out_of_time_reported() {
        let m = even_parity();
        let input = vec![SYM_A; 100];
        let r = m.run(&input, 5, false);
        assert_eq!(r.halt, Halt::OutOfTime);
    }

    #[test]
    fn missing_transition_rejects() {
        let m = TuringMachine::new("stuck", 1, 0);
        let r = m.run(&[SYM_A], 10, false);
        assert_eq!(r.halt, Halt::Reject);
    }

    #[test]
    fn equal_blocks_baseline() {
        assert!(equal_blocks_accepts(&encode_word("ab")));
        assert!(equal_blocks_accepts(&encode_word("aabb")));
        assert!(equal_blocks_accepts(&encode_word("")));
        assert!(!equal_blocks_accepts(&encode_word("ba")));
        assert!(!equal_blocks_accepts(&encode_word("aab")));
        assert!(!equal_blocks_accepts(&encode_word("abab")));
    }

    #[test]
    fn max_symbol_reflects_transitions() {
        assert!(even_parity().max_symbol() >= SYM_B);
        assert_eq!(TuringMachine::new("empty", 1, 0).max_symbol(), BLANK);
    }

    #[test]
    fn display_formatting() {
        let m = even_parity();
        let s = m.to_string();
        assert!(s.contains("even-parity"));
        assert!(s.contains("states"));
    }

    #[test]
    fn is_accepting_and_rejecting() {
        let m = even_parity();
        assert!(m.is_accepting(2));
        assert!(m.is_rejecting(3));
        assert!(!m.is_accepting(0));
        assert!(!m.is_rejecting(0));
    }
}
