//! # srl-core — the set-reduce language
//!
//! A from-scratch implementation of **SRL**, the finite-set database language
//! of Immerman, Patnaik and Stemple, *"The Expressiveness of a Family of
//! Finite Set Languages"* (PODS 1991; TCS 155, 1996).
//!
//! SRL is a tiny, typed, purely functional language whose only iteration
//! construct is the higher-order `set-reduce` operator — a fold over a finite
//! set, traversed in the implementation-supplied order of its element type.
//! The paper's central results relate syntactic restrictions of the language
//! to complexity classes:
//!
//! * set-height ≤ 1 (**SRL**) captures exactly **P**;
//! * additionally bounding accumulators to tuples (**BASRL**) captures **L**;
//! * the unrestricted language, or SRL plus invented values (`new`), or the
//!   list variant LRL, captures the **primitive recursive** functions.
//!
//! This crate provides the language itself:
//!
//! * [`value::Value`] — booleans, ordered atoms, naturals, tuples, ordered
//!   finite sets and lists, with the total order that `choose`/`rest` follow;
//! * [`types::Type`] — the type language with the paper's `set-height`,
//!   tuple-width and tuple-nesting measures;
//! * [`ast::Expr`] — the abstract syntax (grammar rules 1–10 plus the studied
//!   extensions), and [`dsl`] — builder combinators;
//! * [`program::Program`] — named definitions closed under composition;
//! * [`typecheck`] — the typing rules plus dialect enforcement;
//! * [`dialect::Dialect`] — which optional operators are available
//!   (SRL, BASRL, u-SRL, SRL+new, LRL, arithmetic extensions);
//! * [`eval`] — a resource-bounded evaluator implementing the Section 2
//!   semantics equations literally, instrumented with the paper's cost model;
//! * [`pipeline`] — the staged compile path
//!   (`Source → Program → Checked → Compiled`) that text input (parsed by
//!   `srl-syntax`), DSL input, type checking, lowering, and bytecode caching
//!   all flow through.
//!
//! The companion crates build on this one: `srl-stdlib` reconstructs every
//! program in the paper, `srl-analysis` reads complexity off the syntax
//! (Section 6) and checks order-independence (Section 7), `srl-syntax` adds a
//! textual surface form, and `srl-bench` reproduces the paper's results as
//! measurements.
//!
//! ## Quick example
//!
//! ```
//! use srl_core::dsl::*;
//! use srl_core::eval::eval_expr;
//! use srl_core::limits::EvalLimits;
//! use srl_core::program::Env;
//! use srl_core::value::Value;
//!
//! // forsome(S, λx. x = target): is `target` a member of S?
//! let member = set_reduce(
//!     var("S"),
//!     lam("x", "t", eq(var("x"), var("t"))),
//!     lam("found", "acc", or(var("found"), var("acc"))),
//!     bool_(false),
//!     var("target"),
//! );
//! let env = Env::new()
//!     .bind("S", Value::set([Value::atom(1), Value::atom(4), Value::atom(9)]))
//!     .bind("target", Value::atom(4));
//! assert_eq!(eval_expr(&member, &env, EvalLimits::default()).unwrap(), Value::bool(true));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analysis;
pub mod api;
pub mod ast;
pub mod bignat;
pub mod bytecode;
pub mod cancel;
pub mod dialect;
pub mod dsl;
pub mod error;
pub mod eval;
pub mod faultpoint;
pub mod intern;
pub mod limits;
pub mod lower;
pub mod parallel;
pub mod pipeline;
pub mod program;
pub mod setrepr;
pub mod tier;
pub mod typecheck;
pub mod types;
pub mod value;
pub(crate) mod vm;

pub use analysis::{spine_verdict, DefSummaries, SpineBlock};
pub use ast::{Expr, Lambda};
pub use bignat::BigNat;
pub use bytecode::{Chunk, FoldClass, FoldOrigin};
pub use cancel::{CancelState, CancelToken};
pub use dialect::Dialect;
pub use error::{CheckError, EvalError, SrlError};
pub use eval::{
    eval_expr, eval_expr_with_stats, run_program, Evaluator, ExecBackend, TierEngagements,
};
pub use intern::{Symbol, SymbolTable};
pub use limits::{EvalLimits, EvalStats};
pub use lower::{program_fingerprint, CompiledDef, CompiledProgram, LExpr, LLambda, LoweredExpr};
pub use pipeline::{Pipeline, PipelineConfig, Source, TypePolicy};
pub use program::{Env, FunDef, Param, Program};
pub use setrepr::SetRepr;
pub use typecheck::{
    check_and_compile, check_expr, check_program, CheckedProgram, FunSig, TypeChecker,
};
pub use types::Type;
pub use value::{domain_set, leq_relation, Atom, Value, ValueSet};
