//! Iterated permutation multiplication in BASRL (Lemma 4.10).
//!
//! `IMₛₙ` — compose permutations π₁ ∗ π₂ ∗ … ∗ π_m and ask where point `i`
//! lands — is complete for L under first-order reductions with BIT
//! (Fact 4.9). Lemma 4.10 expresses it in BASRL with the input coded as a set
//! of tuples `[p, [j, k]]` ("permutation p maps j to k") and a bounded
//! accumulator `[next permutation index, current point]`:
//!
//! ```text
//! IP(I, i) = set-reduce(I, identity,
//!              λ(xtuple, pair). set-reduce(I, identity,
//!                 λ(x, p). if (x.1 = p.1) ∧ (x.2.1 = p.2) ∧ ¬(p.1 = m)
//!                          then [increment(p.1), x.2.2] else p,
//!                 pair),
//!              [0, i])
//! IM(I, i, j) = (IP(I, i).2 = j)
//! ```
//!
//! The one representational choice: the scan needs a rank *beyond* the last
//! permutation index so that the accumulator can come to rest after applying
//! π_m; [`padded_domain`] therefore supplies the domain
//! `{0, …, max(m + 1, n)}`, which plays the role of the constant `n` the
//! paper says is "available".

use srl_core::ast::Lambda;
use srl_core::dsl::*;
use srl_core::program::Program;
use srl_core::value::Value;
use workloads::permutation::IteratedProductInstance;

use crate::arith::{arithmetic_program, names as arith};

/// Names of the definitions produced by [`perm_program`].
pub mod names {
    /// `ip(D, I, i) → [next_index, point]` — the scan of Lemma 4.10.
    pub const IP: &str = "ip";
    /// `im(D, I, i, j) → bool` — does the iterated product map `i` to `j`?
    pub const IM: &str = "im";
    /// `apply_perm(D, I, p, x) → [next_index, point]` — one application step
    /// (exposed for testing).
    pub const APPLY_PERM: &str = "apply_perm";
}

/// Builds the BASRL program for IMₛₙ (on top of the Section 4 arithmetic).
pub fn perm_program() -> Program {
    let program = arithmetic_program();

    // apply_perm(D, I, p, x): scan I once, applying permutation `p` to point
    // `x` and advancing the permutation index; if no matching tuple exists
    // (p is past the end) the pair is returned unchanged.
    let program = program.define(
        names::APPLY_PERM,
        ["D", "I", "p", "x"],
        set_reduce(
            var("I"),
            Lambda::identity(),
            lam(
                "t",
                "pair",
                if_(
                    and(
                        eq(sel(var("t"), 1), sel(var("pair"), 1)),
                        eq(sel(sel(var("t"), 2), 1), sel(var("pair"), 2)),
                    ),
                    tuple([
                        call(arith::INC, [var("D"), sel(var("pair"), 1)]),
                        sel(sel(var("t"), 2), 2),
                    ]),
                    var("pair"),
                ),
            ),
            tuple([var("p"), var("x")]),
            empty_set(),
        ),
    );

    // ip(D, I, i): iterate apply_perm once per element of D (|D| ≥ m + 1
    // iterations), starting from [first permutation, i].
    let program = program.define(
        names::IP,
        ["D", "I", "i"],
        set_reduce(
            var("D"),
            Lambda::identity(),
            lam(
                "step",
                "pair",
                call(
                    names::APPLY_PERM,
                    [var("D"), var("I"), sel(var("pair"), 1), sel(var("pair"), 2)],
                ),
            ),
            tuple([choose(var("D")), var("i")]),
            empty_set(),
        ),
    );

    // im(D, I, i, j): the decision version.
    program.define(
        names::IM,
        ["D", "I", "i", "j"],
        eq(
            sel(call(names::IP, [var("D"), var("I"), var("i")]), 2),
            var("j"),
        ),
    )
}

/// The domain the program scans: `{0, …, max(m + 1, n) − 1}`, i.e. at least
/// one rank beyond the last permutation index and at least every point.
pub fn padded_domain(instance: &IteratedProductInstance) -> Value {
    let size = (instance.permutations.len() as u64 + 1).max(instance.degree() as u64);
    Value::set((0..size).map(Value::atom))
}

#[cfg(test)]
mod tests {
    use super::names::*;
    use super::*;
    use srl_core::eval::run_program;
    use srl_core::limits::EvalLimits;
    use workloads::permutation::{IteratedProductInstance, Permutation};

    fn srl_image(instance: &IteratedProductInstance, point: usize) -> u64 {
        let program = perm_program();
        let (value, _) = run_program(
            &program,
            IP,
            &[
                padded_domain(instance),
                instance.to_srl_value(),
                Value::atom(point as u64),
            ],
            EvalLimits::benchmark(),
        )
        .expect("ip evaluation");
        value.as_tuple().expect("pair")[1]
            .as_atom()
            .expect("point is an atom")
            .index
    }

    #[test]
    fn program_validates() {
        assert!(perm_program().validate().is_ok());
    }

    #[test]
    fn identity_instance_fixes_every_point() {
        let instance = IteratedProductInstance {
            permutations: vec![Permutation::identity(4); 3],
        };
        for i in 0..4 {
            assert_eq!(srl_image(&instance, i), i as u64);
        }
    }

    #[test]
    fn single_cycle_shifts_once() {
        let instance = IteratedProductInstance {
            permutations: vec![Permutation::cycle(5)],
        };
        for i in 0..5 {
            assert_eq!(srl_image(&instance, i), ((i + 1) % 5) as u64);
        }
    }

    #[test]
    fn matches_native_product_on_random_instances() {
        for seed in 0..4u64 {
            let instance = IteratedProductInstance::random(5, 4, seed);
            let product = instance.product();
            for i in 0..5 {
                assert_eq!(
                    srl_image(&instance, i),
                    product.apply(i) as u64,
                    "seed {seed}, point {i}"
                );
            }
        }
    }

    #[test]
    fn decision_version_agrees() {
        let instance = IteratedProductInstance::random(4, 3, 9);
        let product = instance.product();
        let program = perm_program();
        for i in 0..4usize {
            for j in 0..4usize {
                let (value, _) = run_program(
                    &program,
                    IM,
                    &[
                        padded_domain(&instance),
                        instance.to_srl_value(),
                        Value::atom(i as u64),
                        Value::atom(j as u64),
                    ],
                    EvalLimits::benchmark(),
                )
                .unwrap();
                assert_eq!(value, Value::bool(product.apply(i) == j), "({i}, {j})");
            }
        }
    }

    #[test]
    fn accumulator_is_logspace_sized() {
        // The BASRL signature again: the accumulator stays a pair of atoms no
        // matter how many permutations are composed.
        let program = perm_program();
        let mut widths = Vec::new();
        for count in [2usize, 6, 10] {
            let instance = IteratedProductInstance::random(6, count, 3);
            let (_, stats) = run_program(
                &program,
                IP,
                &[
                    padded_domain(&instance),
                    instance.to_srl_value(),
                    Value::atom(0),
                ],
                EvalLimits::benchmark(),
            )
            .unwrap();
            widths.push(stats.max_accumulator_weight);
        }
        assert_eq!(widths[0], widths[1]);
        assert_eq!(widths[1], widths[2]);
        assert!(widths[0] <= 8);
    }

    #[test]
    fn padded_domain_has_room_for_the_sentinel_index() {
        let instance = IteratedProductInstance::random(3, 5, 1);
        // 5 permutations of degree 3: need ranks 0..=5, so 6 atoms.
        assert_eq!(padded_domain(&instance).len(), Some(6));
        let instance = IteratedProductInstance::random(6, 2, 1);
        assert_eq!(padded_domain(&instance).len(), Some(6));
    }
}
