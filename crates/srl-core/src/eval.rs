//! The evaluator: a direct implementation of the Section 2 semantics.
//!
//! The semantics equations are implemented literally:
//!
//! ```text
//! (if true then e1 else e2)  = e1
//! (if false then e1 else e2) = e2
//! sel_i([e1, …, en])         = e_i
//! set-reduce(s, app, acc, base, extra) =
//!     if s = emptyset then base
//!     else acc(app(choose(s), extra), set-reduce(rest(s), app, acc, base, extra))
//! ```
//!
//! where `choose(S)` is the minimal element of `S` in the value order and
//! `rest(S)` is `S` without it. The recursion is evaluated iteratively, with
//! the accumulator combining elements **in ascending order** (the base value
//! meets `choose(S)` first): this is the traversal order every concrete
//! program in the paper assumes — `increment` "changes the second false to
//! true on the next step when we remember a + 1", and the `IP` scan of
//! Lemma 4.10 applies the permutations in index order. The Rust stack never
//! grows with the cardinality of the set.
//!
//! ## Zero-copy evaluation
//!
//! The evaluator does not walk the name-based [`Expr`] AST directly: at
//! construction it lowers the program once through [`crate::lower`] and then
//! runs the slot-indexed [`LExpr`] IR.
//!
//! * Variable access is `locals[frame_base + slot]` — no string comparison,
//!   no reverse scan of an association list.
//! * Calls borrow the compiled callee body through a shared
//!   [`CompiledProgram`]; the seed implementation deep-cloned the callee's
//!   entire AST on **every** call.
//! * `Value` payloads are `Arc`-shared (see [`crate::value`]), so the clones
//!   the semantics equations require — each element and the `extra` value per
//!   reduce iteration, the result of `choose` — are reference-count bumps,
//!   and `rest`/`insert` mutate uniquely-owned sets in place via
//!   [`Arc::make_mut`] instead of rebuilding them.
//!
//! None of this changes observable behaviour: the lowered tree mirrors the
//! AST node-for-node, so evaluation order, results, errors and every
//! [`EvalStats`] counter are identical to the tree-walking evaluator — the
//! logspace experiments (E3/E4) depend on those counters byte-for-byte.
//!
//! Evaluation is resource-bounded by [`EvalLimits`] and instrumented by
//! [`EvalStats`]; both are essential to the experiments: the statistics carry
//! the paper's cost model (`|S|` iterations, `T_ins` inserts, accumulator
//! size), and the limits keep the deliberately-exponential programs
//! (Example 3.12, the LRL blow-up) from exhausting memory.

use std::sync::Arc;
use std::time::Instant;

use crate::ast::Expr;
use crate::cancel::{CancelState, CancelToken};
use crate::dialect::Dialect;
use crate::error::EvalError;
use crate::limits::{EvalLimits, EvalStats};
use crate::lower::{CompiledProgram, LExpr, LId, LLambda, LoweredExpr};
use crate::program::{Env, Program};
use crate::setrepr::{ColumnarKind, SetRepr};
use crate::value::Value;

/// Cap used when measuring accumulator sizes: accumulators larger than this
/// are recorded as "at least the cap", which is all the logspace experiments
/// need to know, and keeps measurement from dominating evaluation time.
pub(crate) const ACCUMULATOR_WEIGHT_CAP: usize = 4_096;

/// Per-tier breakdown of the columnar engagement diagnostic: how many
/// `set-reduce` folds traversed or produced a set on each columnar tier
/// (see [`crate::setrepr`]). A fold counts **once**, under the traversed
/// set's tier when that is columnar, else under the produced set's — so
/// [`TierEngagements::total`] is exactly the engagement count the
/// aggregate [`Evaluator::tier_engagements`] diagnostic has always
/// reported. Deliberately **not** part of [`EvalStats`]: the statistics
/// are byte-identical whether or not any tier engages, while this reports
/// the storage strategy.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TierEngagements {
    /// Folds engaging the sorted-`u32` atoms tier.
    pub atoms: u64,
    /// Folds engaging the dense bitset tier.
    pub bits: u64,
    /// Folds engaging the struct-of-arrays atom-tuple rows tier.
    pub rows: u64,
}

impl TierEngagements {
    /// Engagements across all columnar tiers.
    pub fn total(&self) -> u64 {
        self.atoms + self.bits + self.rows
    }
}

impl std::ops::AddAssign for TierEngagements {
    fn add_assign(&mut self, rhs: Self) {
        self.atoms += rhs.atoms;
        self.bits += rhs.bits;
        self.rows += rhs.rows;
    }
}

/// Which execution engine an [`Evaluator`] runs.
///
/// Both backends execute the same compiled form ([`CompiledProgram`]) under
/// the same [`EvalLimits`] budget and produce **byte-identical results and
/// [`EvalStats`]** on every successful evaluation — the statistics carry the
/// paper's cost model, so they are part of the semantics, not a tuning knob
/// (`tests/tests/vm_differential.rs` pins this across the benchmark suite).
/// On error paths the error kind matches while partial counters may differ
/// by instruction reordering — with one caveat: a program that would cross
/// the step **and** depth budget inside the same fused batch may report
/// either limit error depending on the backend (see
/// [`EvalCore::bump_batch`]'s ordering note); which limits are exceeded is
/// still identical, as are all values and statistics whenever evaluation
/// succeeds.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ExecBackend {
    /// The recursive tree-walk over the lowered arena (this module) — the
    /// reference engine, still selectable everywhere.
    TreeWalk,
    /// The register bytecode VM ([`crate::vm`]) with superinstruction
    /// fusion ([`crate::bytecode`]); chunks are generated lazily, once per
    /// compiled program / lowered expression. The **default** backend (with
    /// `threads: 1`): it produces byte-identical results and statistics to
    /// the tree-walk (CI-gated both ways) and runs the benchmark suite
    /// 2.1–19.9× faster (`BENCH_3.json`).
    Vm {
        /// Worker-pool width for provably-splittable `set-reduce` folds
        /// (see [`crate::parallel`]). `0` and `1` both mean sequential
        /// execution; `n > 1` lets the VM shard proper-hom folds across up
        /// to `n` scoped threads. The thread count never changes results or
        /// [`EvalStats`] — the stats-determinism contract holds across the
        /// whole axis, exactly as it does across backends.
        threads: usize,
    },
}

impl Default for ExecBackend {
    fn default() -> Self {
        ExecBackend::vm()
    }
}

impl ExecBackend {
    /// The bytecode VM, sequential (`threads: 1`) — the default backend.
    pub fn vm() -> Self {
        ExecBackend::Vm { threads: 1 }
    }

    /// The bytecode VM with a worker pool of `threads` (normalized to at
    /// least 1; `vm_with_threads(1)` is exactly [`ExecBackend::vm`]).
    pub fn vm_with_threads(threads: usize) -> Self {
        ExecBackend::Vm {
            threads: threads.max(1),
        }
    }

    /// The effective worker-pool width: 1 for the tree-walk and the
    /// sequential VM, the configured count otherwise.
    pub fn threads(&self) -> usize {
        match self {
            ExecBackend::TreeWalk => 1,
            ExecBackend::Vm { threads } => (*threads).max(1),
        }
    }
}

/// A resource-bounded evaluator for a single [`Program`].
///
/// Construction lowers the program to the slot-indexed IR once; evaluation
/// then never touches names or clones definition bodies — the evaluator
/// runs entirely off the compiled form, which can be shared between
/// evaluators via [`Evaluator::with_compiled`]. The execution engine is
/// selected by [`ExecBackend`] (the bytecode VM by default; see
/// [`Evaluator::with_backend`]).
pub struct Evaluator {
    compiled: Arc<CompiledProgram>,
    core: EvalCore,
    backend: ExecBackend,
}

/// The mutable evaluation state, split from the compiled program so that the
/// interpreter loop can borrow a definition body (`&CompiledProgram`) and the
/// state (`&mut EvalCore`) simultaneously — calls are pure borrows, with no
/// per-call clone or reference-count traffic. Shared by both backends: the
/// bytecode VM uses `locals` as its register file (frames are slot registers
/// plus temporaries) and charges through the same accounting methods, which
/// is what keeps the two engines' statistics byte-identical.
pub(crate) struct EvalCore {
    pub(crate) limits: EvalLimits,
    pub(crate) stats: EvalStats,
    pub(crate) allocated_leaves: usize,
    /// The value stack: one slot per live binding (definition parameters,
    /// `let`s, lambda parameters), pushed in binding order. The VM widens
    /// each frame with its statically-sized temporary registers.
    pub(crate) locals: Vec<Value>,
    /// Start of the current call frame within `locals`.
    pub(crate) frame_base: usize,
    /// Scratch used by the VM's fused monotone folds: spine inserts report
    /// the weights of novel elements here (see `bytecode::ReduceKind`).
    pub(crate) spine_delta: usize,
    /// Diagnostic (not part of [`EvalStats`]): how many folds actually ran
    /// sharded across the worker pool. Lets tests and tools verify the
    /// parallel path engaged without perturbing the byte-identical stats.
    pub(crate) parallel_folds: u64,
    /// Diagnostic (not part of [`EvalStats`]): how many folds traversed or
    /// produced a columnar (atoms/bits/rows tier) set, broken down by
    /// tier. Lets the differential suites prove the columnar tiers
    /// actually engaged on a workload without perturbing the
    /// byte-identical stats.
    pub(crate) tier_engagements: TierEngagements,
    /// The shared stop flag polled at the amortized cancellation points.
    /// Reset to `Running` when a root evaluation starts; cloned into every
    /// parallel shard worker so a stop reaches all siblings.
    pub(crate) cancel: CancelToken,
    /// The armed wall-clock deadline of the in-flight root evaluation
    /// ([`EvalLimits::deadline`] resolved to an instant at entry).
    pub(crate) deadline_at: Option<Instant>,
    /// Step count at which the next cancellation/deadline poll fires — the
    /// hot loop pays one integer compare per step; the atomic load and the
    /// clock read happen once per [`POLL_STRIDE`] steps.
    pub(crate) next_poll: u64,
    /// Snapshot of the statistics at the moment the last evaluation failed
    /// (cancelled, deadline, limit, or any other error). The public stats
    /// roll back on failure so the evaluator stays reusable; this keeps the
    /// partial counters observable for logging and `--json` output.
    pub(crate) last_error_stats: Option<EvalStats>,
}

/// How many steps pass between cancellation/deadline polls. Small enough
/// that a deadline overshoots by microseconds on ordinary programs, large
/// enough that the per-step cost is one predictable branch.
pub(crate) const POLL_STRIDE: u64 = 4_096;

impl Evaluator {
    /// Creates an evaluator over `program` with the given budget, lowering
    /// the program's definitions to the slot-indexed IR.
    pub fn new(program: &Program, limits: EvalLimits) -> Self {
        Self::from_compiled(Arc::new(CompiledProgram::compile(program)), limits)
    }

    /// Creates an evaluator reusing an already-compiled program (see
    /// [`Program::compile`]). **Contract:** `compiled` must be the compiled
    /// form of `program` — evaluation resolves calls through `compiled`
    /// alone, so a mismatched pair would evaluate the wrong bodies. The
    /// pairing is validated in every build profile by comparing the
    /// structural fingerprint recorded at compile time (see
    /// [`crate::lower::program_fingerprint`]); a mismatch is
    /// [`EvalError::CompiledProgramMismatch`].
    pub fn with_compiled(
        program: &Program,
        compiled: Arc<CompiledProgram>,
        limits: EvalLimits,
    ) -> Result<Self, EvalError> {
        let expected = crate::lower::program_fingerprint(program);
        let found = compiled.fingerprint();
        if expected != found {
            return Err(EvalError::CompiledProgramMismatch { expected, found });
        }
        Ok(Self::from_compiled(compiled, limits))
    }

    /// Builds the evaluator around a compiled program whose provenance is
    /// already trusted (freshly compiled, or fingerprint-checked).
    fn from_compiled(compiled: Arc<CompiledProgram>, limits: EvalLimits) -> Self {
        Evaluator {
            compiled,
            core: EvalCore {
                limits,
                stats: EvalStats::default(),
                allocated_leaves: 0,
                locals: Vec::new(),
                frame_base: 0,
                spine_delta: 0,
                parallel_folds: 0,
                tier_engagements: TierEngagements::default(),
                cancel: CancelToken::new(),
                deadline_at: None,
                next_poll: POLL_STRIDE,
                last_error_stats: None,
            },
            backend: ExecBackend::default(),
        }
    }

    /// Selects the execution backend (builder form). Both backends honour
    /// the same limits and produce byte-identical results and statistics;
    /// the VM generates its bytecode lazily on first use and reuses it for
    /// the life of the shared [`CompiledProgram`] / [`LoweredExpr`].
    pub fn with_backend(mut self, backend: ExecBackend) -> Self {
        self.backend = backend;
        self
    }

    /// Selects the execution backend in place.
    pub fn set_backend(&mut self, backend: ExecBackend) {
        self.backend = backend;
    }

    /// The currently selected execution backend.
    pub fn backend(&self) -> ExecBackend {
        self.backend
    }

    /// Statistics accumulated so far.
    pub fn stats(&self) -> &EvalStats {
        &self.core.stats
    }

    /// Diagnostic counter: how many `set-reduce` folds were actually
    /// executed sharded across the worker pool (always 0 under
    /// `threads ≤ 1`, under the tree-walk backend, and for folds below the
    /// [`crate::parallel`] work threshold). Deliberately **not** part of
    /// [`EvalStats`]: the statistics are byte-identical across thread
    /// counts, while this counter reports the execution strategy.
    pub fn parallel_folds(&self) -> u64 {
        self.core.parallel_folds
    }

    /// Diagnostic counter: how many `set-reduce` folds traversed a columnar
    /// input or produced a columnar accumulator (the sorted-`u32` atoms
    /// tier, the dense bitset tier, or the struct-of-arrays rows tier, see
    /// [`crate::setrepr`]). Like [`Evaluator::parallel_folds`],
    /// deliberately **not** part of [`EvalStats`]: the statistics are
    /// byte-identical whether or not the tier engages, while this counter
    /// reports the storage strategy. The per-tier breakdown is
    /// [`Evaluator::tier_engagement_breakdown`].
    pub fn tier_engagements(&self) -> u64 {
        self.core.tier_engagements.total()
    }

    /// Per-tier breakdown of [`Evaluator::tier_engagements`]: which
    /// columnar tier each engaged fold ran on (the traversed set's tier
    /// when columnar, else the produced set's).
    pub fn tier_engagement_breakdown(&self) -> TierEngagements {
        self.core.tier_engagements
    }

    /// Resets the statistics and allocation counters (the budget stays).
    pub fn reset_stats(&mut self) {
        self.core.stats = EvalStats::default();
        self.core.allocated_leaves = 0;
        self.core.parallel_folds = 0;
        self.core.tier_engagements = TierEngagements::default();
        self.core.last_error_stats = None;
    }

    /// A clone of this evaluator's [`CancelToken`]. Call
    /// [`CancelToken::cancel`] from any thread to abort the in-flight
    /// query at its next cancellation point; the evaluation returns
    /// [`EvalError::Cancelled`] and the evaluator stays reusable (each new
    /// root evaluation rearms the token).
    pub fn cancel_token(&self) -> CancelToken {
        self.core.cancel.clone()
    }

    /// The statistics at the moment the most recent evaluation failed, if
    /// any. On failure the cumulative [`Evaluator::stats`] roll back to
    /// their pre-call values (so the evaluator answers the next query as if
    /// the failed one never ran); the partial counters of the failed run
    /// stay observable here until the next reset or failure.
    pub fn last_error_stats(&self) -> Option<&EvalStats> {
        self.core.last_error_stats.as_ref()
    }

    /// Evaluates an expression whose free variables are bound by `env`.
    ///
    /// This is the convenience one-shot path: it lowers `expr` against
    /// `env`'s names and evaluates immediately, so the scope/environment
    /// pairing cannot drift. For repeated evaluation, lower once with
    /// [`Evaluator::lower`] and call [`Evaluator::eval_lowered`].
    pub fn eval(&mut self, expr: &Expr, env: &Env) -> Result<Value, EvalError> {
        let lowered = self.lower(expr, env);
        self.eval_lowered(&lowered, env)
    }

    /// Lowers `expr` against the **names** of `env` for repeated evaluation
    /// via [`Evaluator::eval_lowered`] — the lower-once / evaluate-many
    /// path.
    ///
    /// Lowering is *scope*-dependent, not value-dependent: the environment's
    /// names (in binding order) become frame slots, so every free name of
    /// `expr` resolves **at lowering time** — a name missing from the scope
    /// becomes a poison node that errors if evaluated, never a late lookup.
    /// The resulting [`LoweredExpr`] records the scope it was lowered
    /// against; [`Evaluator::eval_lowered`] asserts (in debug builds) that
    /// the environment it is given binds those names in that order. Rebound
    /// *values* are fine — that is the repeated-evaluation use case.
    pub fn lower(&self, expr: &Expr, env: &Env) -> LoweredExpr {
        let scope: Vec<&str> = env.iter().map(|(n, _)| n).collect();
        self.compiled.lower_expr(expr, &scope)
    }

    /// Evaluates an already-lowered expression. **Contract:** `env` must
    /// bind the same names, in the same order, as the scope `lowered` was
    /// lowered against (slot indices are positional) — checked by a
    /// `debug_assert` against the recorded scope. Renamed *values* are fine.
    pub fn eval_lowered(&mut self, lowered: &LoweredExpr, env: &Env) -> Result<Value, EvalError> {
        debug_assert!(
            lowered.scope_names().len() == env.len()
                && lowered
                    .scope_names()
                    .iter()
                    .zip(env.iter())
                    .all(|(scope_name, (env_name, _))| scope_name == env_name),
            "eval_lowered: environment binds {:?} but the expression was lowered against {:?} — \
             free names resolve at lowering time, so the frames must agree positionally",
            env.iter().map(|(n, _)| n).collect::<Vec<_>>(),
            lowered.scope_names(),
        );
        let compiled = &self.compiled;
        match self.backend {
            ExecBackend::TreeWalk => self
                .core
                .in_root_frame(env.iter().map(|(_, v)| v.clone()), |core| {
                    core.eval_in(compiled, lowered.nodes(), lowered.root_node(), 0)
                }),
            ExecBackend::Vm { .. } => {
                let ctx = crate::vm::VmCtx {
                    program: compiled,
                    pchunk: compiled.code(),
                    threads: self.backend.threads(),
                };
                let chunk = lowered.code(compiled);
                self.core
                    .in_root_frame(env.iter().map(|(_, v)| v.clone()), |core| {
                        crate::vm::run_expr(core, &ctx, chunk)
                    })
            }
        }
    }

    /// Calls a named definition on argument values.
    pub fn call(&mut self, name: &str, args: &[Value]) -> Result<Value, EvalError> {
        let def_id = self
            .compiled
            .def_id(name)
            .ok_or_else(|| EvalError::UnknownFunction(name.to_string()))?;
        let def = &self.compiled.defs()[def_id as usize];
        if def.params.len() != args.len() {
            return Err(EvalError::Shape {
                operator: "call",
                expected: "matching argument count",
                found: format!(
                    "{name}: {} parameter(s), {} argument(s)",
                    def.params.len(),
                    args.len()
                ),
            });
        }
        let compiled = &self.compiled;
        match self.backend {
            ExecBackend::TreeWalk => {
                let body = def.body;
                self.core.in_root_frame(args.iter().cloned(), |core| {
                    let nodes = compiled.nodes();
                    core.eval_in(compiled, nodes, &nodes[body.index()], 0)
                })
            }
            ExecBackend::Vm { .. } => {
                let ctx = crate::vm::VmCtx {
                    program: compiled,
                    pchunk: compiled.code(),
                    threads: self.backend.threads(),
                };
                self.core.in_root_frame(args.iter().cloned(), |core| {
                    crate::vm::run_def(core, &ctx, def_id)
                })
            }
        }
    }
}

impl EvalCore {
    /// Records one fold's tier engagement: a fold that traversed or
    /// produced a columnar set counts once, under the traversed set's tier
    /// when that is columnar, else under the produced set's. Shared by the
    /// tree-walk and both VM reduce paths so the diagnostic (like the
    /// stats) is backend-invariant.
    pub(crate) fn record_tier_engagement(&mut self, items: &SetRepr, produced: &Value) {
        let kind = items.columnar_kind().or_else(|| match produced {
            Value::Set(s) => s.columnar_kind(),
            _ => None,
        });
        match kind {
            Some(ColumnarKind::Atoms) => self.tier_engagements.atoms += 1,
            Some(ColumnarKind::Bits) => self.tier_engagements.bits += 1,
            Some(ColumnarKind::Rows) => self.tier_engagements.rows += 1,
            None => {}
        }
    }

    /// Installs a fresh root frame holding `inputs`, runs `body`, and drops
    /// the frame eagerly — shared by [`Evaluator::eval_lowered`] and
    /// [`Evaluator::call`]. Dropping before returning (not at the next
    /// evaluation) matters twice over: a long-lived evaluator must not pin
    /// the inputs' payloads, and stale references would force needless
    /// copy-on-write later.
    ///
    /// It is also the hardening boundary: entry rearms the [`CancelToken`]
    /// and resolves [`EvalLimits::deadline`] to a concrete instant; on
    /// failure the statistics and allocation counters roll back to their
    /// entry values (the partial counters are preserved in
    /// `last_error_stats`), so an evaluator that was cancelled, timed out,
    /// or hit a budget answers its next query exactly like a fresh one.
    fn in_root_frame(
        &mut self,
        inputs: impl Iterator<Item = Value>,
        body: impl FnOnce(&mut Self) -> Result<Value, EvalError>,
    ) -> Result<Value, EvalError> {
        self.locals.clear();
        self.frame_base = 0;
        self.cancel.reset();
        self.deadline_at = self.limits.deadline.map(|d| Instant::now() + d);
        self.next_poll = self.stats.steps.saturating_add(POLL_STRIDE);
        let entry_stats = self.stats;
        let entry_leaves = self.allocated_leaves;
        self.locals.reserve(128);
        self.locals.extend(inputs);
        let result = body(self);
        self.locals.clear();
        self.deadline_at = None;
        if result.is_err() {
            self.last_error_stats = Some(self.stats);
            self.stats = entry_stats;
            self.allocated_leaves = entry_leaves;
        }
        result
    }

    #[inline]
    pub(crate) fn bump_step(&mut self, depth: usize) -> Result<(), EvalError> {
        self.stats.steps += 1;
        if self.stats.steps > self.limits.max_steps {
            return Err(EvalError::StepLimitExceeded {
                limit: self.limits.max_steps,
            });
        }
        if depth > self.limits.max_depth {
            return Err(EvalError::DepthLimitExceeded {
                limit: self.limits.max_depth,
            });
        }
        self.stats.max_depth = self.stats.max_depth.max(depth);
        if self.stats.steps >= self.next_poll {
            self.poll_cancellation()?;
        }
        Ok(())
    }

    /// Charges `count` steps whose deepest visit is `max_depth` in one
    /// batch — the VM's fused folds use this for step sequences whose
    /// counts are value-independent. Sound because both budgets are
    /// monotone: the batch total crosses the step limit iff some single
    /// bump inside it would have, and some visit exceeds the depth limit
    /// iff the deepest one does. (When a batch would trip *both* limits,
    /// the step error wins; the tree-walk reports whichever its
    /// interleaving reached first — error kinds on such double-limit
    /// programs may differ, values and success-path statistics cannot.)
    #[inline]
    pub(crate) fn bump_batch(&mut self, count: u64, max_depth: usize) -> Result<(), EvalError> {
        self.stats.steps += count;
        if self.stats.steps > self.limits.max_steps {
            return Err(EvalError::StepLimitExceeded {
                limit: self.limits.max_steps,
            });
        }
        if max_depth > self.limits.max_depth {
            return Err(EvalError::DepthLimitExceeded {
                limit: self.limits.max_depth,
            });
        }
        self.stats.max_depth = self.stats.max_depth.max(max_depth);
        if self.stats.steps >= self.next_poll {
            self.poll_cancellation()?;
        }
        Ok(())
    }

    /// The amortized cancellation point: consulted every [`POLL_STRIDE`]
    /// steps by [`EvalCore::bump_step`] / [`EvalCore::bump_batch`]. Checks
    /// the shared token first (one relaxed load), then — only when a
    /// deadline is armed — the wall clock. A worker that observes its own
    /// deadline expiry flips the shared token so sibling shards stop too.
    #[cold]
    fn poll_cancellation(&mut self) -> Result<(), EvalError> {
        self.next_poll = self.stats.steps.saturating_add(POLL_STRIDE);
        match self.cancel.state() {
            CancelState::Cancelled => Err(EvalError::Cancelled),
            CancelState::DeadlineExpired => Err(self.deadline_error()),
            CancelState::Running => {
                if let Some(at) = self.deadline_at {
                    if Instant::now() >= at {
                        self.cancel.mark_deadline();
                        return Err(self.deadline_error());
                    }
                }
                Ok(())
            }
        }
    }

    /// The `DeadlineExceeded` error carrying the configured budget.
    pub(crate) fn deadline_error(&self) -> EvalError {
        let limit_ms = self
            .limits
            .deadline
            .map(|d| d.as_millis() as u64)
            .unwrap_or(0);
        EvalError::DeadlineExceeded { limit_ms }
    }

    /// Counts one per-element fold iteration. Also the hook where the
    /// [`crate::faultpoint::DEADLINE_MID_FOLD`] fault point deterministically
    /// simulates a deadline expiry on the k-th iteration (one relaxed load
    /// per element when no fault is armed).
    #[inline]
    pub(crate) fn note_iteration(&mut self) -> Result<(), EvalError> {
        self.stats.reduce_iterations += 1;
        if crate::faultpoint::armed(crate::faultpoint::DEADLINE_MID_FOLD)
            .is_some_and(|k| self.stats.reduce_iterations >= k)
        {
            self.cancel.mark_deadline();
            return Err(self.deadline_error());
        }
        Ok(())
    }

    #[inline]
    pub(crate) fn charge_allocation(&mut self, leaves: usize) -> Result<(), EvalError> {
        self.allocated_leaves = self.allocated_leaves.saturating_add(leaves);
        self.stats.max_value_weight = self.stats.max_value_weight.max(self.allocated_leaves);
        if self.allocated_leaves > self.limits.max_value_weight {
            return Err(EvalError::SizeLimitExceeded {
                limit: self.limits.max_value_weight,
            });
        }
        Ok(())
    }

    /// Records an accumulator weight observation (the per-iteration update
    /// of `max_accumulator_weight`).
    #[inline]
    pub(crate) fn note_accumulator_weight(&mut self, w: usize) {
        self.stats.max_accumulator_weight = self.stats.max_accumulator_weight.max(w);
    }

    /// Borrows a VM register of the current frame.
    #[inline]
    pub(crate) fn reg(&self, r: u16) -> &Value {
        &self.locals[self.frame_base + r as usize]
    }

    /// Moves a VM register's value out, leaving a placeholder.
    #[inline]
    pub(crate) fn take_reg(&mut self, r: u16) -> Value {
        let index = self.frame_base + r as usize;
        std::mem::replace(&mut self.locals[index], Value::Bool(false))
    }

    /// Writes a VM register.
    #[inline]
    pub(crate) fn set_reg(&mut self, r: u16, v: Value) {
        let index = self.frame_base + r as usize;
        self.locals[index] = v;
    }

    /// Drops the values left in a reduce's lambda-parameter slots after the
    /// loop (the tree-walk pops them per application; a long-lived frame
    /// must not pin the last element's payload).
    #[inline]
    pub(crate) fn clear_lambda_slots(&mut self, x: u16) {
        self.set_reg(x, Value::Bool(false));
        self.set_reg(x + 1, Value::Bool(false));
    }

    /// `insert(elem, set)` with the paper's accounting — shape check first
    /// (like the tree-walk's match), then one insert counted and the
    /// element's weight charged, then the copy-on-write insert. Returns the
    /// grown set plus whether the element was novel and its weight (the
    /// VM's monotone folds consume those). Shared by both backends so the
    /// shape error, the stats order and the COW discipline cannot diverge.
    pub(crate) fn insert_value(
        &mut self,
        elem: Value,
        set: Value,
    ) -> Result<(Value, bool, usize), EvalError> {
        match set {
            Value::Set(mut items) => {
                self.stats.inserts += 1;
                let weight = elem.weight();
                self.charge_allocation(weight)?;
                // Copy-on-write: in place when uniquely owned.
                let novel = Arc::make_mut(&mut items).insert(elem);
                Ok((Value::Set(items), novel, weight))
            }
            other => Err(EvalError::Shape {
                operator: "insert",
                expected: "a set as second argument",
                found: other.to_string(),
            }),
        }
    }

    /// `cons(elem, list)` with the paper's accounting; shared by both
    /// backends like [`EvalCore::insert_value`].
    pub(crate) fn cons_value(&mut self, elem: Value, list: Value) -> Result<Value, EvalError> {
        match list {
            Value::List(mut items) => {
                self.stats.inserts += 1;
                self.charge_allocation(elem.weight())?;
                Arc::make_mut(&mut items).insert(0, elem);
                Ok(Value::List(items))
            }
            other => Err(EvalError::Shape {
                operator: "cons",
                expected: "a list as second argument",
                found: other.to_string(),
            }),
        }
    }

    /// Borrows a frame slot (peephole paths that never need ownership).
    #[inline]
    fn local_ref(&self, slot: u32) -> Result<&Value, EvalError> {
        self.locals
            .get(self.frame_base + slot as usize)
            .ok_or_else(|| EvalError::UnboundVariable(format!("<slot {slot}>")))
    }

    /// Reads a frame slot. Lowering guarantees the slot is in range whenever
    /// the compile-time scope matched the runtime frame, so a miss is an
    /// internal invariant violation, reported as an unbound variable rather
    /// than a panic.
    #[inline]
    fn local(&self, slot: u32) -> Result<Value, EvalError> {
        self.locals
            .get(self.frame_base + slot as usize)
            .cloned()
            .ok_or_else(|| EvalError::UnboundVariable(format!("<slot {slot}>")))
    }

    fn eval_in(
        &mut self,
        compiled: &CompiledProgram,
        nodes: &[LExpr],
        expr: &LExpr,
        depth: usize,
    ) -> Result<Value, EvalError> {
        self.bump_step(depth)?;
        match expr {
            LExpr::Bool(b) => Ok(Value::Bool(*b)),
            LExpr::Const(v) => Ok(v.clone()),
            LExpr::Local(slot) => self.local(*slot),
            LExpr::UnboundVar(name) => Err(EvalError::UnboundVariable(name.clone())),
            LExpr::If(c, t, e) => {
                let cond = self.eval_in(compiled, nodes, &nodes[c.index()], depth + 1)?;
                match cond {
                    Value::Bool(true) => {
                        self.eval_in(compiled, nodes, &nodes[t.index()], depth + 1)
                    }
                    Value::Bool(false) => {
                        self.eval_in(compiled, nodes, &nodes[e.index()], depth + 1)
                    }
                    other => Err(EvalError::Shape {
                        operator: "if",
                        expected: "a boolean condition",
                        found: other.to_string(),
                    }),
                }
            }
            LExpr::Tuple(items) => {
                let mut out = Vec::with_capacity(items.len());
                for item in items {
                    out.push(self.eval_in(compiled, nodes, &nodes[item.index()], depth + 1)?);
                }
                self.charge_allocation(1)?;
                Ok(Value::Tuple(Arc::from(out)))
            }
            LExpr::Sel(index, e) => {
                // Peephole: `sel_i(x)` on a variable borrows the frame slot
                // and clones only the selected component — the common case
                // in every accumulator-scanning program. Steps, depths and
                // errors are identical to evaluating the `Local` child.
                if let LExpr::Local(slot) = &nodes[e.index()] {
                    self.bump_step(depth + 1)?;
                    return sel_component(self.local_ref(*slot)?, *index);
                }
                let v = self.eval_in(compiled, nodes, &nodes[e.index()], depth + 1)?;
                sel_component(&v, *index)
            }
            LExpr::Eq(a, b) => self.eval_comparison(compiled, nodes, *a, *b, depth, |x, y| x == y),
            LExpr::Leq(a, b) => self.eval_comparison(compiled, nodes, *a, *b, depth, |x, y| x <= y),
            LExpr::EmptySet => Ok(Value::empty_set()),
            LExpr::Insert(elem, set) => {
                let v = self.eval_in(compiled, nodes, &nodes[elem.index()], depth + 1)?;
                let s = self.eval_in(compiled, nodes, &nodes[set.index()], depth + 1)?;
                let (grown, _, _) = self.insert_value(v, s)?;
                Ok(grown)
            }
            LExpr::Choose(e) => {
                // Peephole: `choose(x)` on a variable borrows the slot and
                // clones only the minimum element.
                if let LExpr::Local(slot) = &nodes[e.index()] {
                    self.bump_step(depth + 1)?;
                    return choose_min(self.local_ref(*slot)?);
                }
                let s = self.eval_in(compiled, nodes, &nodes[e.index()], depth + 1)?;
                choose_min(&s)
            }
            LExpr::Rest(e) => {
                let s = self.eval_in(compiled, nodes, &nodes[e.index()], depth + 1)?;
                rest_value(s)
            }
            LExpr::SetReduce {
                set,
                app,
                acc,
                base,
                extra,
            } => {
                let set_v = self.eval_in(compiled, nodes, &nodes[set.index()], depth + 1)?;
                let base_v = self.eval_in(compiled, nodes, &nodes[base.index()], depth + 1)?;
                let extra_v = self.eval_in(compiled, nodes, &nodes[extra.index()], depth + 1)?;
                let items = match set_v {
                    Value::Set(items) => items,
                    other => {
                        return Err(EvalError::Shape {
                            operator: "set-reduce",
                            expected: "a set as first argument",
                            found: other.to_string(),
                        })
                    }
                };
                // The accumulator combines the elements in the choose/rest
                // order (ascending): base first meets the minimal element.
                // `elem.clone()` / `extra_v.clone()` are O(1) Arc bumps.
                let mut accumulator = base_v;
                for elem in items.iter() {
                    self.note_iteration()?;
                    let applied = self.apply(
                        compiled,
                        nodes,
                        *app,
                        elem.clone(),
                        extra_v.clone(),
                        depth + 1,
                    )?;
                    accumulator =
                        self.apply(compiled, nodes, *acc, applied, accumulator, depth + 1)?;
                    let w = weight_capped(&accumulator, ACCUMULATOR_WEIGHT_CAP);
                    self.stats.max_accumulator_weight = self.stats.max_accumulator_weight.max(w);
                }
                // Diagnostic parity with the VM: a fold that traversed or
                // produced a columnar set counts as one tier engagement.
                self.record_tier_engagement(&items, &accumulator);
                Ok(accumulator)
            }
            LExpr::ListReduce {
                list,
                app,
                acc,
                base,
                extra,
            } => {
                require_dialect(
                    &compiled.dialect,
                    compiled.dialect.allow_lists,
                    "list-reduce",
                )?;
                let list_v = self.eval_in(compiled, nodes, &nodes[list.index()], depth + 1)?;
                let base_v = self.eval_in(compiled, nodes, &nodes[base.index()], depth + 1)?;
                let extra_v = self.eval_in(compiled, nodes, &nodes[extra.index()], depth + 1)?;
                let items = match list_v {
                    Value::List(items) => items,
                    other => {
                        return Err(EvalError::Shape {
                            operator: "list-reduce",
                            expected: "a list as first argument",
                            found: other.to_string(),
                        })
                    }
                };
                // Lists are traversed in their stored order (head first),
                // exactly like the set case but without sorting.
                let mut accumulator = base_v;
                for elem in items.iter() {
                    self.note_iteration()?;
                    let applied = self.apply(
                        compiled,
                        nodes,
                        *app,
                        elem.clone(),
                        extra_v.clone(),
                        depth + 1,
                    )?;
                    accumulator =
                        self.apply(compiled, nodes, *acc, applied, accumulator, depth + 1)?;
                    let w = weight_capped(&accumulator, ACCUMULATOR_WEIGHT_CAP);
                    self.stats.max_accumulator_weight = self.stats.max_accumulator_weight.max(w);
                }
                Ok(accumulator)
            }
            LExpr::Call { def, args } => {
                // Borrow the compiled body — the seed evaluator deep-cloned
                // the callee's AST here.
                let callee = &compiled.defs()[*def as usize];
                if callee.params.len() != args.len() {
                    return Err(EvalError::Shape {
                        operator: "call",
                        expected: "matching argument count",
                        found: format!(
                            "{}: {} parameter(s), {} argument(s)",
                            compiled.def_name(callee),
                            callee.params.len(),
                            args.len()
                        ),
                    });
                }
                // Arguments are buffered before any is pushed: a binder
                // (`let`, a reduce lambda) inside a later argument resolves
                // its slots against the *caller's* frame layout, which must
                // not yet contain the earlier arguments' values.
                let mut arg_values = Vec::with_capacity(args.len());
                for a in args {
                    arg_values.push(self.eval_in(compiled, nodes, &nodes[a.index()], depth + 1)?);
                }
                let saved_base = self.frame_base;
                let new_base = self.locals.len();
                self.locals.append(&mut arg_values);
                self.frame_base = new_base;
                let result = self.eval_in(
                    compiled,
                    compiled.nodes(),
                    &compiled.nodes()[callee.body.index()],
                    depth + 1,
                );
                self.locals.truncate(new_base);
                self.frame_base = saved_base;
                result
            }
            LExpr::CallUnknown(name) => Err(EvalError::UnknownFunction(name.clone())),
            LExpr::Let { value, body } => {
                let v = self.eval_in(compiled, nodes, &nodes[value.index()], depth + 1)?;
                self.locals.push(v);
                let result = self.eval_in(compiled, nodes, &nodes[body.index()], depth + 1);
                self.locals.pop();
                result
            }
            LExpr::New(e) => {
                require_dialect(&compiled.dialect, compiled.dialect.allow_new, "new")?;
                let v = self.eval_in(compiled, nodes, &nodes[e.index()], depth + 1)?;
                self.stats.new_values += 1;
                Ok(Value::Atom(crate::value::Atom::new(next_fresh_index(&v))))
            }
            LExpr::NatConst(n) => {
                require_dialect(
                    &compiled.dialect,
                    compiled.dialect.allow_nat,
                    "nat constant",
                )?;
                Ok(Value::Nat(n.clone()))
            }
            LExpr::Succ(e) => {
                require_dialect(&compiled.dialect, compiled.dialect.allow_nat, "succ")?;
                let n = self.expect_nat(compiled, nodes, e, depth, "succ")?;
                self.check_nat_width(n.bit_len() + 1)?;
                Ok(Value::Nat(n.succ()))
            }
            LExpr::NatAdd(a, b) => {
                require_dialect(
                    &compiled.dialect,
                    compiled.dialect.allow_nat_add,
                    "nat addition",
                )?;
                let na = self.expect_nat(compiled, nodes, a, depth, "+")?;
                let nb = self.expect_nat(compiled, nodes, b, depth, "+")?;
                self.check_nat_width(na.bit_len().max(nb.bit_len()) + 1)?;
                Ok(Value::Nat(na.add(&nb)))
            }
            LExpr::NatMul(a, b) => {
                require_dialect(
                    &compiled.dialect,
                    compiled.dialect.allow_nat_mul,
                    "nat multiplication",
                )?;
                let na = self.expect_nat(compiled, nodes, a, depth, "*")?;
                let nb = self.expect_nat(compiled, nodes, b, depth, "*")?;
                self.check_nat_width(na.bit_len() + nb.bit_len())?;
                Ok(Value::Nat(na.mul(&nb)))
            }
            LExpr::EmptyList => {
                require_dialect(&compiled.dialect, compiled.dialect.allow_lists, "emptylist")?;
                Ok(Value::empty_list())
            }
            LExpr::Cons(elem, list) => {
                require_dialect(&compiled.dialect, compiled.dialect.allow_lists, "cons")?;
                let v = self.eval_in(compiled, nodes, &nodes[elem.index()], depth + 1)?;
                let l = self.eval_in(compiled, nodes, &nodes[list.index()], depth + 1)?;
                self.cons_value(v, l)
            }
            LExpr::Head(e) => {
                require_dialect(&compiled.dialect, compiled.dialect.allow_lists, "head")?;
                let l = self.eval_in(compiled, nodes, &nodes[e.index()], depth + 1)?;
                head_value(l)
            }
            LExpr::Tail(e) => {
                require_dialect(&compiled.dialect, compiled.dialect.allow_lists, "tail")?;
                let l = self.eval_in(compiled, nodes, &nodes[e.index()], depth + 1)?;
                tail_value(l)
            }
        }
    }

    /// `Eq`/`Leq` share one code path so the stats byte-identity contract is
    /// protected by a single implementation. Peephole: comparing two
    /// variables borrows both slots — no clones — with step/depth accounting
    /// identical to evaluating the two `Local` children.
    #[inline]
    fn eval_comparison(
        &mut self,
        compiled: &CompiledProgram,
        nodes: &[LExpr],
        a: LId,
        b: LId,
        depth: usize,
        compare: impl Fn(&Value, &Value) -> bool,
    ) -> Result<Value, EvalError> {
        if let (LExpr::Local(sa), LExpr::Local(sb)) = (&nodes[a.index()], &nodes[b.index()]) {
            self.bump_step(depth + 1)?;
            self.bump_step(depth + 1)?;
            let va = self.local_ref(*sa)?;
            let vb = self.local_ref(*sb)?;
            return Ok(Value::Bool(compare(va, vb)));
        }
        let va = self.eval_in(compiled, nodes, &nodes[a.index()], depth + 1)?;
        let vb = self.eval_in(compiled, nodes, &nodes[b.index()], depth + 1)?;
        Ok(Value::Bool(compare(&va, &vb)))
    }

    fn apply(
        &mut self,
        compiled: &CompiledProgram,
        nodes: &[LExpr],
        lambda: LLambda,
        x: Value,
        y: Value,
        depth: usize,
    ) -> Result<Value, EvalError> {
        self.locals.push(x);
        self.locals.push(y);
        let result = self.eval_in(compiled, nodes, &nodes[lambda.body.index()], depth + 1);
        self.locals.pop();
        self.locals.pop();
        result
    }

    fn expect_nat(
        &mut self,
        compiled: &CompiledProgram,
        nodes: &[LExpr],
        e: &LId,
        depth: usize,
        operator: &'static str,
    ) -> Result<crate::bignat::BigNat, EvalError> {
        match self.eval_in(compiled, nodes, &nodes[e.index()], depth + 1)? {
            Value::Nat(n) => Ok(n),
            other => Err(EvalError::Shape {
                operator,
                expected: "a natural number",
                found: other.to_string(),
            }),
        }
    }

    pub(crate) fn check_nat_width(&self, bits: usize) -> Result<(), EvalError> {
        if bits > self.limits.max_nat_bits {
            Err(EvalError::NatWidthExceeded {
                limit_bits: self.limits.max_nat_bits,
            })
        } else {
            Ok(())
        }
    }
}

/// Rejects `operator` when the dialect does not allow it.
pub(crate) fn require_dialect(
    dialect: &Dialect,
    allowed: bool,
    operator: &str,
) -> Result<(), EvalError> {
    if allowed {
        Ok(())
    } else {
        Err(EvalError::DialectViolation {
            operator: operator.to_string(),
            dialect: dialect.name.to_string(),
        })
    }
}

/// `sel_i(v)` borrowing the component: shared by the tree-walk, the
/// Local-slot peephole and the VM's fused operands, so none can diverge.
pub(crate) fn sel_component_ref(v: &Value, index: usize) -> Result<&Value, EvalError> {
    match v {
        Value::Tuple(items) => {
            if index == 0 || index > items.len() {
                Err(EvalError::SelectorOutOfRange {
                    index,
                    arity: items.len(),
                })
            } else {
                Ok(&items[index - 1])
            }
        }
        other => Err(EvalError::Shape {
            operator: "sel",
            expected: "a tuple",
            found: other.to_string(),
        }),
    }
}

/// `sel_i(v)`: the i-th tuple component (1-based), cloned.
fn sel_component(v: &Value, index: usize) -> Result<Value, EvalError> {
    sel_component_ref(v, index).cloned()
}

/// `rest(v)`: the set without its minimum — one traversal pops it, with no
/// rebuild when the payload is uniquely owned. Shared by both backends.
pub(crate) fn rest_value(v: Value) -> Result<Value, EvalError> {
    match v {
        Value::Set(mut items) => {
            if items.is_empty() {
                return Err(EvalError::ChooseFromEmptySet);
            }
            Arc::make_mut(&mut items).pop_first();
            Ok(Value::Set(items))
        }
        other => Err(EvalError::Shape {
            operator: "rest",
            expected: "a set",
            found: other.to_string(),
        }),
    }
}

/// `head(v)`: the first list element, cloned. Shared by both backends.
pub(crate) fn head_value(v: Value) -> Result<Value, EvalError> {
    match v {
        Value::List(items) => items.first().cloned().ok_or(EvalError::ChooseFromEmptySet),
        other => Err(EvalError::Shape {
            operator: "head",
            expected: "a list",
            found: other.to_string(),
        }),
    }
}

/// `tail(v)`: the list without its head — removed in place when uniquely
/// owned, rebuilt in one pass (instead of make_mut's full copy + shift)
/// when shared. Shared by both backends.
pub(crate) fn tail_value(v: Value) -> Result<Value, EvalError> {
    match v {
        Value::List(mut items) => {
            if items.is_empty() {
                Err(EvalError::ChooseFromEmptySet)
            } else if let Some(unique) = Arc::get_mut(&mut items) {
                unique.remove(0);
                Ok(Value::List(items))
            } else {
                Ok(Value::List(Arc::new(items[1..].to_vec())))
            }
        }
        other => Err(EvalError::Shape {
            operator: "tail",
            expected: "a list",
            found: other.to_string(),
        }),
    }
}

/// `choose(v)`: the minimal element of a non-empty set, shared by the
/// general evaluation path, the Local-slot peephole and the VM.
pub(crate) fn choose_min(v: &Value) -> Result<Value, EvalError> {
    match v {
        Value::Set(items) => items.first().ok_or(EvalError::ChooseFromEmptySet),
        other => Err(EvalError::Shape {
            operator: "choose",
            expected: "a set",
            found: other.to_string(),
        }),
    }
}

/// The smallest atom rank not occurring anywhere in `v` (and at least one
/// larger than every atom that does occur) — the deterministic realisation of
/// the paper's `new(D) ∉ D`.
pub(crate) fn next_fresh_index(v: &Value) -> u64 {
    fn max_atom(v: &Value, cur: &mut Option<u64>) {
        match v {
            Value::Atom(a) => {
                *cur = Some(cur.map_or(a.index, |c| c.max(a.index)));
            }
            Value::Bool(_) | Value::Nat(_) => {}
            Value::Tuple(items) => {
                for i in items.iter() {
                    max_atom(i, cur);
                }
            }
            Value::List(items) => {
                for i in items.iter() {
                    max_atom(i, cur);
                }
            }
            Value::Set(items) => {
                // Columnar tiers know their maximum id without a walk.
                if let Some(max) = items.columnar_max_id() {
                    if let Some(m) = max {
                        *cur = Some(cur.map_or(m, |c| c.max(m)));
                    }
                } else {
                    for i in items.value_slice().expect("non-columnar set") {
                        max_atom(i, cur);
                    }
                }
            }
        }
    }
    let mut cur = None;
    max_atom(v, &mut cur);
    cur.map_or(0, |c| c + 1)
}

/// Computes `v.weight()` but stops counting once `cap` is exceeded, returning
/// `cap + 1` in that case.
pub(crate) fn weight_capped(v: &Value, cap: usize) -> usize {
    fn go(v: &Value, budget: &mut usize) -> bool {
        if *budget == 0 {
            return false;
        }
        *budget -= 1;
        match v {
            Value::Bool(_) | Value::Atom(_) | Value::Nat(_) => true,
            Value::Tuple(items) => items.iter().all(|i| go(i, budget)),
            Value::List(items) => items.iter().all(|i| go(i, budget)),
            Value::Set(items) => match items.columnar_weight_sum() {
                // Columnar: element weights are known without a walk (atoms
                // weigh 1, arity-k rows 1 + k) — charge them in one step.
                Some(n) => {
                    if n <= *budget {
                        *budget -= n;
                        true
                    } else {
                        *budget = 0;
                        false
                    }
                }
                None => items
                    .value_slice()
                    .expect("non-columnar set")
                    .iter()
                    .all(|i| go(i, budget)),
            },
        }
    }
    let mut budget = cap;
    if go(v, &mut budget) {
        cap - budget
    } else {
        cap + 1
    }
}

/// Evaluates a stand-alone expression (no named definitions) against an
/// environment, in the `full` dialect.
pub fn eval_expr(expr: &Expr, env: &Env, limits: EvalLimits) -> Result<Value, EvalError> {
    let program = Program::new(Dialect::full());
    let mut evaluator = Evaluator::new(&program, limits);
    evaluator.eval(expr, env)
}

/// Evaluates a stand-alone expression and also returns the statistics.
pub fn eval_expr_with_stats(
    expr: &Expr,
    env: &Env,
    limits: EvalLimits,
) -> Result<(Value, EvalStats), EvalError> {
    let program = Program::new(Dialect::full());
    let mut evaluator = Evaluator::new(&program, limits);
    let value = evaluator.eval(expr, env)?;
    Ok((value, *evaluator.stats()))
}

/// Calls a named definition of `program` on `args` and returns the result and
/// statistics.
pub fn run_program(
    program: &Program,
    name: &str,
    args: &[Value],
    limits: EvalLimits,
) -> Result<(Value, EvalStats), EvalError> {
    let mut evaluator = Evaluator::new(program, limits);
    let value = evaluator.call(name, args)?;
    Ok((value, *evaluator.stats()))
}
#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::Lambda;
    use crate::dsl::*;

    fn eval_full(expr: &Expr, env: &Env) -> Result<Value, EvalError> {
        eval_expr(expr, env, EvalLimits::default())
    }

    fn eval_closed(expr: &Expr) -> Value {
        eval_full(expr, &Env::new()).expect("evaluation should succeed")
    }

    #[test]
    fn booleans_and_if() {
        assert_eq!(eval_closed(&bool_(true)), Value::bool(true));
        assert_eq!(
            eval_closed(&if_(bool_(true), atom(1), atom(2))),
            Value::atom(1)
        );
        assert_eq!(
            eval_closed(&if_(bool_(false), atom(1), atom(2))),
            Value::atom(2)
        );
    }

    #[test]
    fn if_requires_boolean_condition() {
        let err = eval_full(&if_(atom(1), atom(1), atom(2)), &Env::new()).unwrap_err();
        assert!(matches!(err, EvalError::Shape { operator: "if", .. }));
    }

    #[test]
    fn tuples_and_selectors() {
        let t = tuple([atom(10), atom(20), atom(30)]);
        assert_eq!(eval_closed(&sel(t.clone(), 1)), Value::atom(10));
        assert_eq!(eval_closed(&sel(t.clone(), 3)), Value::atom(30));
        let err = eval_full(&sel(t, 4), &Env::new()).unwrap_err();
        assert!(matches!(
            err,
            EvalError::SelectorOutOfRange { index: 4, arity: 3 }
        ));
    }

    #[test]
    fn equality_and_order() {
        assert_eq!(eval_closed(&eq(atom(1), atom(1))), Value::bool(true));
        assert_eq!(eval_closed(&eq(atom(1), atom(2))), Value::bool(false));
        assert_eq!(eval_closed(&leq(atom(1), atom(2))), Value::bool(true));
        assert_eq!(eval_closed(&leq(atom(2), atom(1))), Value::bool(false));
        assert_eq!(eval_closed(&leq(atom(2), atom(2))), Value::bool(true));
    }

    #[test]
    fn insert_builds_sets_without_duplicates() {
        let e = insert(atom(1), insert(atom(2), insert(atom(1), empty_set())));
        assert_eq!(
            eval_closed(&e),
            Value::set([Value::atom(1), Value::atom(2)])
        );
    }

    #[test]
    fn choose_and_rest_follow_the_order() {
        let s = set_lit([atom(5), atom(3), atom(9)]);
        assert_eq!(eval_closed(&choose(s.clone())), Value::atom(3));
        assert_eq!(
            eval_closed(&rest(s)),
            Value::set([Value::atom(5), Value::atom(9)])
        );
        assert!(matches!(
            eval_full(&choose(empty_set()), &Env::new()),
            Err(EvalError::ChooseFromEmptySet)
        ));
    }

    #[test]
    fn set_reduce_identity_union_collects_elements() {
        // set-reduce(S, identity, insert, {}, {}) rebuilds S.
        let s = Value::set([Value::atom(4), Value::atom(1), Value::atom(7)]);
        let expr = set_reduce(
            var("S"),
            Lambda::identity(),
            lam("x", "acc", insert(var("x"), var("acc"))),
            empty_set(),
            empty_set(),
        );
        let env = Env::new().bind("S", s.clone());
        assert_eq!(eval_full(&expr, &env).unwrap(), s);
    }

    #[test]
    fn set_reduce_respects_fold_order() {
        // Collect the elements into a *list* through the accumulator. The
        // accumulator meets the elements in ascending order (choose/rest
        // order), so prepending each one yields the reversed — descending —
        // list: the traversal order is observable, which is exactly the
        // Section 7 point about order-dependent queries.
        let expr = list_reduce_like_collect();
        let env = Env::new().bind(
            "S",
            Value::set([Value::atom(3), Value::atom(1), Value::atom(2)]),
        );
        let program = Program::new(Dialect::full());
        let mut ev = Evaluator::new(&program, EvalLimits::default());
        let v = ev.eval(&expr, &env).unwrap();
        assert_eq!(
            v,
            Value::list([Value::atom(3), Value::atom(2), Value::atom(1)])
        );
    }

    fn list_reduce_like_collect() -> Expr {
        set_reduce(
            var("S"),
            Lambda::identity(),
            lam("x", "acc", cons(var("x"), var("acc"))),
            empty_list(),
            empty_set(),
        )
    }

    #[test]
    fn set_reduce_on_empty_set_returns_base() {
        let expr = set_reduce(
            empty_set(),
            Lambda::identity(),
            lam("x", "acc", insert(var("x"), var("acc"))),
            const_v(Value::atom(42)),
            empty_set(),
        );
        assert_eq!(eval_closed(&expr), Value::atom(42));
    }

    #[test]
    fn extra_is_threaded_to_app() {
        // forall-style: check every element equals the extra value.
        let expr = set_reduce(
            var("S"),
            lam("x", "e", eq(var("x"), var("e"))),
            lam("p", "acc", and(var("p"), var("acc"))),
            bool_(true),
            var("target"),
        );
        let env = Env::new()
            .bind("S", Value::set([Value::atom(2), Value::atom(2)]))
            .bind("target", Value::atom(2));
        assert_eq!(eval_full(&expr, &env).unwrap(), Value::bool(true));
        let env2 = Env::new()
            .bind("S", Value::set([Value::atom(2), Value::atom(3)]))
            .bind("target", Value::atom(2));
        assert_eq!(eval_full(&expr, &env2).unwrap(), Value::bool(false));
    }

    #[test]
    fn let_and_var_scoping() {
        let expr = let_in("a", atom(1), let_in("a", atom(2), var("a")));
        assert_eq!(eval_closed(&expr), Value::atom(2));
        let expr = let_in(
            "a",
            atom(1),
            tuple([var("a"), let_in("a", atom(2), var("a")), var("a")]),
        );
        assert_eq!(
            eval_closed(&expr),
            Value::tuple([Value::atom(1), Value::atom(2), Value::atom(1)])
        );
    }

    #[test]
    fn unbound_variable_errors() {
        assert!(matches!(
            eval_full(&var("nope"), &Env::new()),
            Err(EvalError::UnboundVariable(_))
        ));
    }

    #[test]
    fn calls_bind_only_parameters() {
        let program = Program::new(Dialect::full()).define(
            "pair_with_self",
            ["x"],
            tuple([var("x"), var("x")]),
        );
        let mut ev = Evaluator::new(&program, EvalLimits::default());
        let v = ev.call("pair_with_self", &[Value::atom(3)]).unwrap();
        assert_eq!(v, Value::tuple([Value::atom(3), Value::atom(3)]));
        // Wrong arity is an error.
        assert!(ev.call("pair_with_self", &[]).is_err());
        // Unknown function is an error.
        assert!(ev.call("nope", &[]).is_err());
    }

    #[test]
    fn binders_inside_later_call_arguments_resolve_correctly() {
        // Regression: argument values must not occupy the caller's frame
        // while later arguments are still being evaluated — a `let` (or a
        // reduce lambda) inside the second argument would otherwise resolve
        // its slot to the first argument's value.
        let program =
            Program::new(Dialect::full()).define("pair", ["a", "b"], tuple([var("b"), var("a")]));
        let mut ev = Evaluator::new(&program, EvalLimits::default());
        let expr = call("pair", [atom(1), let_in("y", atom(2), var("y"))]);
        let v = ev.eval(&expr, &Env::new()).unwrap();
        assert_eq!(v, Value::tuple([Value::atom(2), Value::atom(1)]));
        // Same shape with a reduce lambda in the second argument.
        let expr = call(
            "pair",
            [
                atom(1),
                set_reduce(
                    const_v(Value::set([Value::atom(7)])),
                    Lambda::identity(),
                    lam("x", "acc", var("x")),
                    atom(0),
                    empty_set(),
                ),
            ],
        );
        let v = ev.eval(&expr, &Env::new()).unwrap();
        assert_eq!(v, Value::tuple([Value::atom(7), Value::atom(1)]));
    }

    #[test]
    fn nested_calls_compose() {
        let program = Program::new(Dialect::full())
            .define("fst", ["t"], sel(var("t"), 1))
            .define("snd", ["t"], sel(var("t"), 2))
            .define(
                "swap",
                ["t"],
                tuple([call("snd", [var("t")]), call("fst", [var("t")])]),
            );
        let (v, _) = run_program(
            &program,
            "swap",
            &[Value::tuple([Value::atom(1), Value::atom(2)])],
            EvalLimits::default(),
        )
        .unwrap();
        assert_eq!(v, Value::tuple([Value::atom(2), Value::atom(1)]));
    }

    #[test]
    fn new_produces_fresh_atoms() {
        let program = Program::new(Dialect::srl_new());
        let mut ev = Evaluator::new(&program, EvalLimits::default());
        let env = Env::new().bind("S", Value::set([Value::atom(3), Value::atom(7)]));
        let v = ev.eval(&new_value(var("S")), &env).unwrap();
        assert_eq!(v, Value::atom(8));
        // succ(S) = insert(new(S), S) (Section 5).
        let succ_expr = insert(new_value(var("S")), var("S"));
        let v = ev.eval(&succ_expr, &env).unwrap();
        assert_eq!(v.len(), Some(3));
        // new of a set with no atoms starts at 0.
        let v = ev.eval(&new_value(empty_set()), &Env::new()).unwrap();
        assert_eq!(v, Value::atom(0));
    }

    #[test]
    fn new_is_rejected_in_plain_srl() {
        let program = Program::srl();
        let mut ev = Evaluator::new(&program, EvalLimits::default());
        let err = ev.eval(&new_value(empty_set()), &Env::new()).unwrap_err();
        assert!(matches!(err, EvalError::DialectViolation { .. }));
    }

    #[test]
    fn nat_arithmetic() {
        let program = Program::new(Dialect::full());
        let mut ev = Evaluator::new(&program, EvalLimits::default());
        let env = Env::new();
        assert_eq!(
            ev.eval(&nat_add(nat(2), nat(3)), &env).unwrap(),
            Value::nat(5)
        );
        assert_eq!(
            ev.eval(&nat_mul(nat(6), nat(7)), &env).unwrap(),
            Value::nat(42)
        );
        assert_eq!(ev.eval(&succ(nat(41)), &env).unwrap(), Value::nat(42));
    }

    #[test]
    fn nat_operators_rejected_in_srl() {
        let program = Program::srl();
        let mut ev = Evaluator::new(&program, EvalLimits::default());
        assert!(matches!(
            ev.eval(&nat(1), &Env::new()).unwrap_err(),
            EvalError::DialectViolation { .. }
        ));
        let program = Program::new(Dialect::srl_with_addition());
        let mut ev = Evaluator::new(&program, EvalLimits::default());
        assert!(ev.eval(&nat_add(nat(1), nat(1)), &Env::new()).is_ok());
        assert!(matches!(
            ev.eval(&nat_mul(nat(2), nat(2)), &Env::new()).unwrap_err(),
            EvalError::DialectViolation { .. }
        ));
    }

    #[test]
    fn lists_and_list_reduce() {
        let program = Program::new(Dialect::lrl());
        let mut ev = Evaluator::new(&program, EvalLimits::default());
        let env = Env::new();
        let l = cons(atom(1), cons(atom(2), cons(atom(1), empty_list())));
        let v = ev.eval(&l, &env).unwrap();
        assert_eq!(
            v,
            Value::list([Value::atom(1), Value::atom(2), Value::atom(1)])
        );
        assert_eq!(ev.eval(&head(l.clone()), &env).unwrap(), Value::atom(1));
        assert_eq!(
            ev.eval(&tail(l.clone()), &env).unwrap(),
            Value::list([Value::atom(2), Value::atom(1)])
        );
        // list-reduce preserves duplicates: rebuild the list.
        let rebuild = list_reduce(
            l,
            Lambda::identity(),
            lam("x", "acc", cons(var("x"), var("acc"))),
            empty_list(),
            empty_set(),
        );
        let v = ev.eval(&rebuild, &env).unwrap();
        assert_eq!(
            v,
            Value::list([Value::atom(1), Value::atom(2), Value::atom(1)])
        );
    }

    #[test]
    fn list_operators_rejected_in_srl() {
        let program = Program::srl();
        let mut ev = Evaluator::new(&program, EvalLimits::default());
        assert!(matches!(
            ev.eval(&empty_list(), &Env::new()).unwrap_err(),
            EvalError::DialectViolation { .. }
        ));
    }

    #[test]
    fn step_limit_enforced() {
        let s = Value::set((0..100).map(Value::atom));
        let expr = set_reduce(
            var("S"),
            Lambda::identity(),
            lam("x", "acc", insert(var("x"), var("acc"))),
            empty_set(),
            empty_set(),
        );
        let env = Env::new().bind("S", s);
        let err = eval_expr(&expr, &env, EvalLimits::default().with_max_steps(50)).unwrap_err();
        assert!(matches!(err, EvalError::StepLimitExceeded { limit: 50 }));
    }

    #[test]
    fn size_limit_enforced() {
        let s = Value::set((0..1000).map(Value::atom));
        let expr = set_reduce(
            var("S"),
            Lambda::identity(),
            lam("x", "acc", insert(var("x"), var("acc"))),
            empty_set(),
            empty_set(),
        );
        let env = Env::new().bind("S", s);
        let err = eval_expr(
            &expr,
            &env,
            EvalLimits::default().with_max_value_weight(100),
        )
        .unwrap_err();
        assert!(matches!(err, EvalError::SizeLimitExceeded { limit: 100 }));
    }

    #[test]
    fn depth_limit_enforced() {
        // Deeply nested tuples exceed a tiny depth budget.
        let mut e = atom(0);
        for _ in 0..100 {
            e = tuple([e]);
        }
        let err = eval_expr(&e, &Env::new(), EvalLimits::default().with_max_depth(10)).unwrap_err();
        assert!(matches!(err, EvalError::DepthLimitExceeded { limit: 10 }));
    }

    #[test]
    fn nat_width_limit_enforced() {
        let program = Program::new(Dialect::full());
        let mut ev = Evaluator::new(&program, EvalLimits::default().with_max_nat_bits(8));
        let big = nat_mul(nat(1 << 7), nat(1 << 7));
        assert!(matches!(
            ev.eval(&big, &Env::new()).unwrap_err(),
            EvalError::NatWidthExceeded { .. }
        ));
    }

    #[test]
    fn stats_track_iterations_and_accumulator() {
        let s = Value::set((0..10).map(Value::atom));
        let expr = set_reduce(
            var("S"),
            Lambda::identity(),
            lam("x", "acc", insert(var("x"), var("acc"))),
            empty_set(),
            empty_set(),
        );
        let env = Env::new().bind("S", s);
        let (_, stats) = eval_expr_with_stats(&expr, &env, EvalLimits::default()).unwrap();
        assert_eq!(stats.reduce_iterations, 10);
        assert_eq!(stats.inserts, 10);
        // The accumulator grows up to the full set (weight 11 = 10 atoms + set node).
        assert!(stats.max_accumulator_weight >= 10);
        assert!(stats.steps > 0);
        assert!(stats.max_depth > 0);
    }

    #[test]
    fn fresh_index_walks_nested_values() {
        assert_eq!(next_fresh_index(&Value::empty_set()), 0);
        assert_eq!(next_fresh_index(&Value::atom(4)), 5);
        let nested = Value::set([
            Value::tuple([Value::atom(2), Value::atom(9)]),
            Value::atom(1),
        ]);
        assert_eq!(next_fresh_index(&nested), 10);
        assert_eq!(next_fresh_index(&Value::nat(99)), 0);
    }

    #[test]
    fn weight_capped_saturates() {
        let big = Value::set((0..100).map(Value::atom));
        assert_eq!(weight_capped(&big, 10), 11);
        assert_eq!(weight_capped(&Value::atom(1), 10), 1);
        assert_eq!(weight_capped(&big, 1000), big.weight());
    }

    #[test]
    fn reset_stats_clears_counters() {
        let program = Program::new(Dialect::full());
        let mut ev = Evaluator::new(&program, EvalLimits::default());
        ev.eval(&tuple([atom(1), atom(2)]), &Env::new()).unwrap();
        assert!(ev.stats().steps > 0);
        ev.reset_stats();
        assert_eq!(ev.stats().steps, 0);
    }
}
