//! The TCP line-protocol server.
//!
//! One JSON request per line, one JSON response per line (bodies are the
//! `srl_core::api` renderings passed through [`api::compact`], so a server
//! response is the byte-compacted form of exactly what `srl run --json`
//! prints locally — plus trailing `cache`/`id` fields). Connections are
//! handled by a fixed pool of session-accepting threads; per-query
//! parallelism comes from each tenant's evaluator worker pool, multiplexed
//! over `srl-core::parallel`.
//!
//! ## Admission control and shedding
//!
//! Evaluating requests (`run`/`check`/`analyze`) pass an in-flight gate: if
//! `max_inflight` such queries are already executing, the request is
//! **shed** with a structured `overloaded` error (wire exit code 9, a code
//! disjoint from every local failure family) and the connection stays open
//! — the client decides whether to back off or retry. `bind` and `stats`
//! are constant-time and are always served, so an operator can inspect a
//! saturated server. The second admission lever is per-tenant: the tenant
//! config's `deadline_ms` arms a wall-clock deadline wired to cooperative
//! cancellation, so one tenant's runaway query returns `deadline_exceeded`
//! (with the partial stats of the interrupted run) instead of holding a
//! session thread forever.
//!
//! ## Fault isolation
//!
//! A panicking shard worker inside the engine is already isolated at the
//! pool (`EvalError::Internal`); a panic anywhere in the serving layer is
//! additionally caught per connection, so a poisoned request kills one
//! session, never the acceptor loop.

use std::collections::HashMap;
use std::io::{BufRead, BufReader, ErrorKind, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};
use std::time::Duration;

use srl_core::api::{self, Json, Request, RequestKind};
use srl_core::pipeline::{PipelineConfig, Source};
use srl_core::setrepr::set_atom_tier_enabled;
use srl_core::{EvalStats, Expr, Value};
use srl_syntax::frontend::{FrontendError, TextFrontend};

use crate::tenant::Tenant;

/// The tenant used when a request names none.
pub const DEFAULT_TENANT: &str = "default";

/// How the server is configured: the socket, the admission bounds, and the
/// per-tenant pipeline configurations.
#[derive(Clone)]
pub struct ServeConfig {
    /// Address to bind (`127.0.0.1:7878` by default; port `0` picks one).
    pub addr: String,
    /// Maximum concurrently evaluating `run`/`check`/`analyze` queries.
    pub max_inflight: usize,
    /// Compiled-program cache capacity per tenant.
    pub cache_cap: usize,
    /// Number of session-accepting threads (= concurrent connections).
    pub session_threads: usize,
    /// Configuration for tenants not named in `tenants` (they are created
    /// on first use from this template).
    pub default_config: PipelineConfig,
    /// Pre-configured named tenants.
    pub tenants: Vec<(String, PipelineConfig)>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            addr: "127.0.0.1:7878".to_string(),
            max_inflight: 64,
            cache_cap: 128,
            session_threads: 4,
            default_config: PipelineConfig::default(),
            tenants: Vec::new(),
        }
    }
}

impl ServeConfig {
    /// Applies a tenant-configuration document:
    ///
    /// ```json
    /// { "default": { "limits": "small" },
    ///   "tenants": { "alice": { "threads": 2, "deadline_ms": 250 } } }
    /// ```
    ///
    /// `default` re-templates unnamed tenants; each entry under `tenants`
    /// pre-creates a named tenant. Unknown top-level fields are rejected.
    pub fn with_tenant_document(mut self, text: &str) -> Result<Self, String> {
        let json = Json::parse(text)?;
        let Some(fields) = json.as_object() else {
            return Err("a tenant-config document is a JSON object".to_string());
        };
        for (key, value) in fields {
            match key.as_str() {
                "default" => self.default_config = api::pipeline_config_from_json(value)?,
                "tenants" => {
                    let Some(tenants) = value.as_object() else {
                        return Err("\"tenants\" must be an object".to_string());
                    };
                    for (name, config) in tenants {
                        let config = api::pipeline_config_from_json(config)
                            .map_err(|e| format!("tenant \"{name}\": {e}"))?;
                        self.tenants.push((name.clone(), config));
                    }
                }
                other => return Err(format!("unknown tenant-config field \"{other}\"")),
            }
        }
        Ok(self)
    }
}

/// Shared server state: the tenant map and the admission gate.
struct Ctx {
    default_config: PipelineConfig,
    cache_cap: usize,
    max_inflight: usize,
    inflight: AtomicUsize,
    tenants: Mutex<HashMap<String, Arc<Mutex<Tenant>>>>,
}

impl Ctx {
    /// The tenant for `name`, created from the default template on first
    /// use. The map lock is held only for the lookup; queries then lock the
    /// individual tenant (its shard).
    fn tenant(&self, name: &str) -> Arc<Mutex<Tenant>> {
        let mut map = self.tenants.lock().unwrap_or_else(|p| p.into_inner());
        Arc::clone(map.entry(name.to_string()).or_insert_with(|| {
            Arc::new(Mutex::new(Tenant::new(
                name,
                self.default_config.clone(),
                self.cache_cap,
            )))
        }))
    }

    /// Tries to admit one evaluating query; `None` means shed.
    fn admit(&self) -> Option<AdmitGuard<'_>> {
        self.inflight
            .fetch_update(Ordering::AcqRel, Ordering::Acquire, |n| {
                (n < self.max_inflight).then_some(n + 1)
            })
            .ok()
            .map(|_| AdmitGuard { ctx: self })
    }
}

/// Holds one admission slot; releases it on drop (including on panic, so a
/// caught connection panic cannot leak the server into permanent overload).
struct AdmitGuard<'a> {
    ctx: &'a Ctx,
}

impl Drop for AdmitGuard<'_> {
    fn drop(&mut self) {
        self.ctx.inflight.fetch_sub(1, Ordering::AcqRel);
    }
}

/// A bound, not-yet-serving server.
pub struct Server {
    listener: TcpListener,
    session_threads: usize,
    ctx: Arc<Ctx>,
}

/// A running server: the bound address and a shutdown handle.
pub struct ServerHandle {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    workers: Vec<std::thread::JoinHandle<()>>,
}

impl ServerHandle {
    /// The address the server is listening on (with the real port when the
    /// config asked for port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Asks every session thread to stop and joins them. In-progress
    /// queries finish; idle sessions notice within their poll interval.
    pub fn shutdown(self) {
        self.shutdown.store(true, Ordering::Release);
        for worker in self.workers {
            let _ = worker.join();
        }
    }
}

impl Server {
    /// Binds the configured address and pre-creates the named tenants.
    pub fn bind(config: ServeConfig) -> std::io::Result<Server> {
        let listener = TcpListener::bind(&config.addr)?;
        let ctx = Arc::new(Ctx {
            default_config: config.default_config.clone(),
            cache_cap: config.cache_cap,
            max_inflight: config.max_inflight.max(1),
            inflight: AtomicUsize::new(0),
            tenants: Mutex::new(HashMap::new()),
        });
        {
            let mut map = ctx.tenants.lock().expect("new mutex");
            for (name, tenant_config) in &config.tenants {
                map.insert(
                    name.clone(),
                    Arc::new(Mutex::new(Tenant::new(
                        name,
                        tenant_config.clone(),
                        config.cache_cap,
                    ))),
                );
            }
        }
        Ok(Server {
            listener,
            session_threads: config.session_threads.max(1),
            ctx,
        })
    }

    /// The bound address.
    pub fn local_addr(&self) -> std::io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// Starts the session-accepting thread pool and returns immediately.
    pub fn spawn(self) -> std::io::Result<ServerHandle> {
        let addr = self.listener.local_addr()?;
        self.listener.set_nonblocking(true)?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let mut workers = Vec::with_capacity(self.session_threads);
        for i in 0..self.session_threads {
            let listener = self.listener.try_clone()?;
            let ctx = Arc::clone(&self.ctx);
            let shutdown = Arc::clone(&shutdown);
            workers.push(
                std::thread::Builder::new()
                    .name(format!("srl-serve-session-{i}"))
                    .spawn(move || accept_loop(&listener, &ctx, &shutdown))
                    .expect("spawning a session thread"),
            );
        }
        Ok(ServerHandle {
            addr,
            shutdown,
            workers,
        })
    }

    /// Serves until the process ends (the CLI `srl serve` entry point).
    pub fn run(self) -> std::io::Result<()> {
        let handle = self.spawn()?;
        for worker in handle.workers {
            let _ = worker.join();
        }
        Ok(())
    }
}

/// One session thread: accept a connection, serve it to close, repeat.
fn accept_loop(listener: &TcpListener, ctx: &Ctx, shutdown: &AtomicBool) {
    loop {
        if shutdown.load(Ordering::Acquire) {
            return;
        }
        match listener.accept() {
            Ok((stream, _)) => {
                // A panic in the serving layer kills this session only; the
                // loop (and the engine's own worker pools) keep serving.
                let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    serve_connection(stream, ctx, shutdown)
                }));
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(2));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(2)),
        }
    }
}

/// Serves one connection: one JSON request per line, one response per line.
/// Protocol errors answer and keep the connection; I/O errors close it.
fn serve_connection(stream: TcpStream, ctx: &Ctx, shutdown: &AtomicBool) {
    if stream.set_nonblocking(false).is_err() {
        return;
    }
    // A finite read timeout keeps shutdown responsive while a client idles;
    // no Nagle — a response is one small write and must not wait out a
    // delayed ACK.
    let _ = stream.set_read_timeout(Some(Duration::from_millis(100)));
    let _ = stream.set_nodelay(true);
    let mut writer = match stream.try_clone() {
        Ok(w) => w,
        Err(_) => return,
    };
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    loop {
        match reader.read_line(&mut line) {
            Ok(0) => return, // EOF
            Ok(_) => {
                if !line.ends_with('\n') {
                    // Timed out mid-line with a partial read; keep the
                    // prefix and wait for the rest.
                    continue;
                }
                let trimmed = line.trim();
                if !trimmed.is_empty() {
                    // One write per response: body and newline in a single
                    // segment (two small writes would re-trigger Nagle).
                    let mut body = handle_line(ctx, trimmed);
                    body.push('\n');
                    let ok = writer
                        .write_all(body.as_bytes())
                        .and_then(|()| writer.flush());
                    if ok.is_err() {
                        return;
                    }
                }
                line.clear();
            }
            Err(e) if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) => {
                if shutdown.load(Ordering::Acquire) {
                    return;
                }
            }
            Err(_) => return,
        }
    }
}

/// The trailing extras every response carries: the echoed request id.
fn id_extras(request: &Request) -> Vec<(&'static str, String)> {
    match request.id {
        Some(id) => vec![("id", id.to_string())],
        None => Vec::new(),
    }
}

/// A compacted protocol-error body (`kind: "proto"`, wire code 2).
fn proto_error(message: &str, extras: &[(&str, String)]) -> String {
    api::compact(&api::error_json(
        "proto",
        message,
        api::EXIT_USAGE,
        None,
        extras,
    ))
}

/// Dispatches one request line to a compacted one-line response body.
fn handle_line(ctx: &Ctx, line: &str) -> String {
    let request = match Request::parse(line) {
        Ok(request) => request,
        Err(e) => return proto_error(&e, &[]),
    };
    let extras = id_extras(&request);
    let kind = request.kind.expect("Request::parse requires a kind");
    let tenant = ctx.tenant(request.tenant.as_deref().unwrap_or(DEFAULT_TENANT));
    match kind {
        // Constant-time requests are served even under overload.
        RequestKind::Bind => bind(&mut lock_tenant(&tenant), &request, &extras),
        RequestKind::Stats => stats(ctx, &lock_tenant(&tenant), &extras),
        RequestKind::Run | RequestKind::Check | RequestKind::Analyze => {
            let Some(_slot) = ctx.admit() else {
                let mut t = lock_tenant(&tenant);
                t.stats.shed += 1;
                return api::compact(&api::error_json(
                    "overloaded",
                    "in-flight query bound reached; retry later",
                    api::EXIT_OVERLOADED,
                    None,
                    &extras,
                ));
            };
            let mut t = lock_tenant(&tenant);
            t.stats.queries += 1;
            // The columnar-tier toggle is thread-local state; apply the
            // tenant's setting around this query only, restoring the
            // session thread for whichever tenant it serves next.
            let previous = set_atom_tier_enabled(t.config.tiers);
            let body = match kind {
                RequestKind::Run => run(&mut t, &request, &extras),
                RequestKind::Check => check(&mut t, &request, &extras),
                RequestKind::Analyze => analyze(&mut t, &request, &extras),
                _ => unreachable!("bind/stats handled above"),
            };
            set_atom_tier_enabled(previous);
            body
        }
    }
}

fn lock_tenant(tenant: &Arc<Mutex<Tenant>>) -> MutexGuard<'_, Tenant> {
    // A tenant mutex can only be poisoned by a panic inside the engine,
    // which rolls evaluator state back before unwinding; the tenant data is
    // still coherent, so serving beats refusing the tenant forever.
    tenant.lock().unwrap_or_else(|p| p.into_inner())
}

/// Renders a frontend (parse/check) failure.
fn frontend_error(t: &mut Tenant, e: &FrontendError, extras: &[(&str, String)]) -> String {
    t.stats.errors += 1;
    let (exit, kind) = match e {
        FrontendError::Parse(_) => (api::EXIT_PARSE, "parse"),
        FrontendError::Check(_) => (api::EXIT_CHECK, "check"),
    };
    api::compact(&api::error_json(kind, &e.to_string(), exit, None, extras))
}

/// Renders an evaluation failure with the partial stats of the interrupted
/// run, when the evaluator kept a snapshot.
fn eval_error(
    t: &mut Tenant,
    e: &srl_core::EvalError,
    partial: Option<EvalStats>,
    extras: &[(&str, String)],
) -> String {
    t.stats.errors += 1;
    api::compact(&api::error_json(
        e.kind(),
        &e.to_string(),
        api::exit_code(e),
        partial.as_ref(),
        extras,
    ))
}

/// Parses the value-literal arguments of a `run` request.
fn parse_args(args: &[String]) -> Result<Vec<Value>, String> {
    let mut values = Vec::with_capacity(args.len());
    for (i, literal) in args.iter().enumerate() {
        match srl_syntax::parse_value(literal) {
            Ok(v) => values.push(v),
            Err(e) => return Err(format!("args[{i}]: {e}")),
        }
    }
    Ok(values)
}

/// `run`: compile `program` through the tenant cache (or use the resident
/// empty artifact for a bare `expr`), then call a definition or evaluate an
/// expression against the tenant environment.
fn run(t: &mut Tenant, request: &Request, extras: &[(&str, String)]) -> String {
    if request.call.is_some() && request.expr.is_some() {
        return proto_error("\"call\" and \"expr\" are mutually exclusive", extras);
    }
    let expr = match &request.expr {
        Some(text) => match srl_syntax::parse_expr(text) {
            Ok(expr) => Some(expr),
            Err(e) => {
                t.stats.errors += 1;
                return api::compact(&api::error_json(
                    "parse",
                    &format!("expr: {e}"),
                    api::EXIT_PARSE,
                    None,
                    extras,
                ));
            }
        },
        None => None,
    };
    let args = match parse_args(&request.args) {
        Ok(values) => values,
        Err(message) => {
            t.stats.errors += 1;
            return api::compact(&api::error_json(
                "parse",
                &message,
                api::EXIT_PARSE,
                None,
                extras,
            ));
        }
    };
    match &request.program {
        Some(text) => {
            let pipeline = t.config.pipeline();
            let (fingerprint, hit) = match t.cache.lookup_or_compile(&pipeline, text) {
                Ok(resolved) => resolved,
                Err(e) => return frontend_error(t, &e, extras),
            };
            let mut full_extras = vec![(
                "cache",
                format!(
                    "{{ \"hit\": {hit}, \"hits\": {}, \"misses\": {}, \"evictions\": {} }}",
                    t.cache.hits, t.cache.misses, t.cache.evictions
                ),
            )];
            full_extras.extend(extras.iter().map(|(n, v)| (*n, v.clone())));
            let env = t.env.clone();
            let entry = t.cache.entry_mut(fingerprint);
            let outcome = match &expr {
                Some(expr) => {
                    entry.evaluator.reset_stats();
                    entry.evaluator.eval(expr, &env)
                }
                None => {
                    let name = match &request.call {
                        Some(name) => name.clone(),
                        None => {
                            let main_def = entry
                                .artifact
                                .program()
                                .lookup("main")
                                .filter(|def| def.params.is_empty());
                            match main_def {
                                Some(def) => def.name.clone(),
                                None => {
                                    return proto_error(
                                        "no \"call\" given and the program has no zero-parameter `main`",
                                        &full_extras,
                                    )
                                }
                            }
                        }
                    };
                    entry.evaluator.reset_stats();
                    entry.evaluator.call(&name, &args)
                }
            };
            match outcome {
                Ok(value) => {
                    let stats = *entry.evaluator.stats();
                    let tiers = entry.evaluator.tier_engagement_breakdown();
                    api::compact(&api::run_json(&value, &stats, &tiers, &full_extras))
                }
                Err(e) => {
                    let partial = entry.evaluator.last_error_stats().copied();
                    eval_error(t, &e, partial, &full_extras)
                }
            }
        }
        None => {
            // Bare expression over the tenant environment.
            let Some(expr) = expr else {
                return proto_error("\"run\" needs \"program\", \"expr\", or both", extras);
            };
            if !args.is_empty() {
                return proto_error("\"args\" requires \"program\" and \"call\"", extras);
            }
            run_bare_expr(t, &expr, extras)
        }
    }
}

/// Evaluates a bare expression with the tenant's resident evaluator.
fn run_bare_expr(t: &mut Tenant, expr: &Expr, extras: &[(&str, String)]) -> String {
    let env = t.env.clone();
    let evaluator = t.expr_evaluator();
    match evaluator.eval(expr, &env) {
        Ok(value) => {
            let stats = *evaluator.stats();
            let tiers = evaluator.tier_engagement_breakdown();
            api::compact(&api::run_json(&value, &stats, &tiers, extras))
        }
        Err(e) => {
            let partial = evaluator.last_error_stats().copied();
            eval_error(t, &e, partial, extras)
        }
    }
}

/// `check`: parse, validate and classify; no cache involvement (nothing is
/// compiled, so there is nothing worth keeping resident).
fn check(t: &mut Tenant, request: &Request, extras: &[(&str, String)]) -> String {
    let Some(text) = &request.program else {
        return proto_error("\"check\" needs \"program\"", extras);
    };
    let source = Source::new("<request>", text.clone());
    match t.config.pipeline().check_source(&source) {
        Ok(checked) => {
            let program = checked.program();
            let verdict = srl_analysis::classify_program(program, 1);
            api::compact(&api::check_json(
                &program.def_names(),
                &verdict.fragment.to_string(),
                &verdict.explanation,
                extras,
            ))
        }
        Err(e) => frontend_error(t, &e, extras),
    }
}

/// `analyze`: the per-fold classification report, compiled through the
/// tenant cache (an analyze of a hot program is free).
fn analyze(t: &mut Tenant, request: &Request, extras: &[(&str, String)]) -> String {
    let Some(text) = &request.program else {
        return proto_error("\"analyze\" needs \"program\"", extras);
    };
    let pipeline = t.config.pipeline();
    let (fingerprint, hit) = match t.cache.lookup_or_compile(&pipeline, text) {
        Ok(resolved) => resolved,
        Err(e) => return frontend_error(t, &e, extras),
    };
    let mut full_extras = vec![(
        "cache",
        format!(
            "{{ \"hit\": {hit}, \"hits\": {}, \"misses\": {}, \"evictions\": {} }}",
            t.cache.hits, t.cache.misses, t.cache.evictions
        ),
    )];
    full_extras.extend(extras.iter().map(|(n, v)| (*n, v.clone())));
    let entry = t.cache.entry_mut(fingerprint);
    let verdict = srl_analysis::classify_program(entry.artifact.program(), 1);
    let report = srl_analysis::analyze_compiled(entry.artifact.compiled());
    api::compact(&srl_analysis::analyze_json_with(
        &verdict,
        &report,
        &full_extras,
    ))
}

/// `bind`: adds an input binding to the tenant environment. Served even
/// under overload (constant-time, no evaluation).
fn bind(t: &mut Tenant, request: &Request, extras: &[(&str, String)]) -> String {
    let (Some(name), Some(literal)) = (&request.name, &request.value) else {
        return proto_error("\"bind\" needs \"name\" and \"value\"", extras);
    };
    // The name must be readable back as a variable (same rule as the REPL):
    // a keyword or atom-shaped word would bind but never resolve.
    if !matches!(
        srl_syntax::parse_expr(name),
        Ok(srl_core::Expr::Var(v)) if v == *name
    ) {
        return proto_error(
            &format!("`{name}` cannot be used as an input name (not a plain variable)"),
            extras,
        );
    }
    match srl_syntax::parse_value(literal) {
        Ok(value) => {
            let rendered = value.to_string();
            t.env.insert(name, value);
            let mut fields = vec![
                ("ok", "true".to_string()),
                ("name", format!("\"{}\"", api::escape(name))),
                ("value", format!("\"{}\"", api::escape(&rendered))),
            ];
            fields.extend(extras.iter().map(|(n, v)| (*n, v.clone())));
            api::compact(&api::versioned(&fields))
        }
        Err(e) => {
            t.stats.errors += 1;
            api::compact(&api::error_json(
                "parse",
                &format!("value: {e}"),
                api::EXIT_PARSE,
                None,
                extras,
            ))
        }
    }
}

/// `stats`: tenant counters and cache occupancy. Served even under
/// overload so a saturated server stays observable.
fn stats(ctx: &Ctx, t: &Tenant, extras: &[(&str, String)]) -> String {
    let mut fields = vec![
        ("tenant", format!("\"{}\"", api::escape(&t.name))),
        ("queries", t.stats.queries.to_string()),
        ("errors", t.stats.errors.to_string()),
        ("shed", t.stats.shed.to_string()),
        ("bindings", t.env.len().to_string()),
        (
            "cache",
            format!(
                "{{ \"entries\": {}, \"hits\": {}, \"misses\": {}, \"evictions\": {} }}",
                t.cache.len(),
                t.cache.hits,
                t.cache.misses,
                t.cache.evictions
            ),
        ),
        ("inflight", ctx.inflight.load(Ordering::Acquire).to_string()),
        ("max_inflight", ctx.max_inflight.to_string()),
    ];
    fields.extend(extras.iter().map(|(n, v)| (*n, v.clone())));
    api::compact(&api::versioned(&fields))
}
