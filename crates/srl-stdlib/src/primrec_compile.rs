//! Compiling primitive recursive functions into `SRL + new` (Theorem 5.2 (i)).
//!
//! Direction (i) of Theorem 5.2 shows `PrimRec ⊆ ℱ(SRL + new)` by coding the
//! natural number `k` as the set `{d₀, …, d_{k-1}}` (so `0 = ∅` and
//! `k + 1 = k ∪ {new(k)}`) and translating the initial functions and the two
//! closure operations:
//!
//! ```text
//! succ(S)            = insert(new(S), S)
//! proj_k             = the k-th parameter
//! f from g, h by PR  = set-reduce(S, identity, λ(x, T'). h'(x, T'), [g(ȳ), {}])
//!     where h'(x, T') = [h(T'.2, ȳ, T'.1), insert(x, T'.2)]
//! ```
//!
//! This module is that translation, implemented as a compiler from the
//! [`machines::primrec::PrTerm`] ground truth into an SRL program in the
//! `SRL + new` dialect. The E6 experiment evaluates both sides on the same
//! arguments and compares.

use srl_core::ast::Expr;
use srl_core::dialect::Dialect;
use srl_core::dsl::*;
use srl_core::program::Program;
use srl_core::value::Value;

use machines::primrec::{PrError, PrTerm};

/// The result of compiling a primitive recursive term.
#[derive(Clone, Debug)]
pub struct CompiledPr {
    /// The SRL + new program containing one definition per sub-term.
    pub program: Program,
    /// The name of the entry-point definition (the outermost term).
    pub entry: String,
    /// The arity of the entry point.
    pub arity: usize,
}

/// Compiles a primitive recursive term into an `SRL + new` program.
pub fn compile(term: &PrTerm) -> Result<CompiledPr, PrError> {
    let arity = term.arity()?;
    let mut compiler = Compiler {
        program: Program::new(Dialect::srl_new()),
        counter: 0,
    };
    let entry = compiler.compile_term(term)?;
    Ok(CompiledPr {
        program: compiler.program,
        entry,
        arity,
    })
}

struct Compiler {
    program: Program,
    counter: usize,
}

impl Compiler {
    fn fresh_name(&mut self, hint: &str) -> String {
        let name = format!("pr_{hint}_{}", self.counter);
        self.counter += 1;
        name
    }

    fn params(arity: usize) -> Vec<String> {
        (0..arity).map(|i| format!("x{i}")).collect()
    }

    fn compile_term(&mut self, term: &PrTerm) -> Result<String, PrError> {
        let arity = term.arity()?;
        let params = Self::params(arity);
        let (hint, body) = match term {
            PrTerm::Zero(_) => ("zero".to_string(), empty_set()),
            PrTerm::Succ => ("succ".to_string(), insert(new_value(var("x0")), var("x0"))),
            PrTerm::Proj(_, i) => ("proj".to_string(), var(format!("x{i}"))),
            PrTerm::Compose(f, gs) => {
                let inner_names: Vec<String> = gs
                    .iter()
                    .map(|g| self.compile_term(g))
                    .collect::<Result<_, _>>()?;
                let f_name = self.compile_term(f)?;
                let args: Vec<Expr> = inner_names
                    .iter()
                    .map(|g| call(g.clone(), params.iter().map(var)))
                    .collect();
                ("compose".to_string(), call(f_name, args))
            }
            PrTerm::PrimRec(g, h) => {
                let g_name = self.compile_term(g)?;
                let h_name = self.compile_term(h)?;
                // f(x0, y1..yk): fold over x0 with accumulator
                // [f-so-far, counter-set]; the counter set grows by one
                // element per iteration and is itself the coded recursion
                // index handed to h.
                let rest_params: Vec<Expr> = params[1..].iter().map(var).collect();
                let mut h_args: Vec<Expr> = vec![sel(var("ACC"), 2)];
                h_args.extend(rest_params.clone());
                h_args.push(sel(var("ACC"), 1));
                let step = tuple([
                    call(h_name, h_args),
                    insert(var("elem"), sel(var("ACC"), 2)),
                ]);
                let base = tuple([call(g_name, rest_params), empty_set()]);
                let body = sel(
                    set_reduce(
                        var("x0"),
                        srl_core::ast::Lambda::identity(),
                        lam("elem", "ACC", step),
                        base,
                        empty_set(),
                    ),
                    1,
                );
                ("primrec".to_string(), body)
            }
        };
        let name = self.fresh_name(&hint);
        self.program = std::mem::replace(&mut self.program, Program::new(Dialect::srl_new()))
            .define(name.clone(), params, body);
        Ok(name)
    }
}

/// Encodes a natural number in the Section 5 set coding `{d₀, …, d_{k-1}}`.
pub fn encode_nat(k: u64) -> Value {
    Value::set((0..k).map(Value::atom))
}

/// Decodes the set coding back to a natural (the cardinality).
pub fn decode_nat(v: &Value) -> Option<u64> {
    v.as_set().map(|s| s.len() as u64)
}

/// Evaluates a compiled term on machine-word arguments, returning the decoded
/// result.
pub fn eval_compiled(
    compiled: &CompiledPr,
    args: &[u64],
    limits: srl_core::limits::EvalLimits,
) -> Result<u64, srl_core::error::EvalError> {
    let encoded: Vec<Value> = args.iter().map(|&a| encode_nat(a)).collect();
    let (value, _) =
        srl_core::eval::run_program(&compiled.program, &compiled.entry, &encoded, limits)?;
    Ok(decode_nat(&value).unwrap_or(0))
}

#[cfg(test)]
mod tests {
    use super::*;
    use machines::primrec::library;
    use srl_core::limits::EvalLimits;

    fn check_against_ground_truth(term: &PrTerm, cases: &[&[u64]]) {
        let compiled = compile(term).expect("term compiles");
        assert!(compiled.program.validate().is_ok());
        for case in cases {
            let expected = term
                .eval_u64(case)
                .expect("ground-truth evaluation")
                .to_u64()
                .expect("fits in u64");
            let got = eval_compiled(&compiled, case, EvalLimits::default())
                .unwrap_or_else(|e| panic!("SRL evaluation of {case:?} failed: {e}"));
            assert_eq!(got, expected, "args {case:?}");
        }
    }

    #[test]
    fn initial_functions_compile() {
        check_against_ground_truth(&PrTerm::Succ, &[&[0], &[1], &[7]]);
        check_against_ground_truth(&PrTerm::Zero(2), &[&[3, 4], &[0, 0]]);
        check_against_ground_truth(&PrTerm::Proj(3, 1), &[&[3, 4, 5]]);
        check_against_ground_truth(&library::identity(), &[&[9]]);
        check_against_ground_truth(&library::constant(4), &[&[0], &[11]]);
    }

    #[test]
    fn addition_compiles() {
        check_against_ground_truth(
            &library::add(),
            &[&[0, 0], &[0, 5], &[5, 0], &[3, 4], &[7, 6]],
        );
    }

    #[test]
    fn predecessor_and_monus_compile() {
        check_against_ground_truth(&library::pred(), &[&[0], &[1], &[9]]);
        check_against_ground_truth(&library::monus(), &[&[3, 10], &[10, 3], &[0, 4]]);
    }

    #[test]
    fn multiplication_compiles() {
        check_against_ground_truth(&library::mul(), &[&[0, 4], &[4, 0], &[3, 4], &[5, 5]]);
    }

    #[test]
    fn sign_and_cond_compile() {
        check_against_ground_truth(&library::sign(), &[&[0], &[4]]);
        check_against_ground_truth(&library::cond(), &[&[1, 7, 9], &[0, 7, 9]]);
    }

    #[test]
    fn factorial_compiles() {
        check_against_ground_truth(&library::factorial(), &[&[0], &[1], &[3], &[4]]);
    }

    #[test]
    fn exponentiation_compiles_small() {
        check_against_ground_truth(&library::exp(), &[&[0, 3], &[2, 3], &[3, 2]]);
    }

    #[test]
    fn compiled_values_use_invented_atoms() {
        // succ of {d0, d1} must contain a genuinely new atom (d2).
        let compiled = compile(&PrTerm::Succ).unwrap();
        let (v, stats) = srl_core::eval::run_program(
            &compiled.program,
            &compiled.entry,
            &[encode_nat(2)],
            EvalLimits::default(),
        )
        .unwrap();
        assert_eq!(decode_nat(&v), Some(3));
        assert!(v.as_set().unwrap().contains(&Value::atom(2)));
        assert!(stats.new_values >= 1);
    }

    #[test]
    fn plain_srl_dialect_rejects_the_compiled_program() {
        // The same definitions re-homed in the plain SRL dialect fail at
        // evaluation time on the `new` operator — the boundary Section 5
        // draws.
        let compiled = compile(&PrTerm::Succ).unwrap();
        let mut srl_program = compiled.program.clone();
        srl_program.dialect = Dialect::srl();
        let result = srl_core::eval::run_program(
            &srl_program,
            &compiled.entry,
            &[encode_nat(2)],
            EvalLimits::default(),
        );
        assert!(matches!(
            result,
            Err(srl_core::error::EvalError::DialectViolation { .. })
        ));
    }

    #[test]
    fn ill_formed_terms_fail_to_compile() {
        let bad = PrTerm::Compose(Box::new(library::add()), vec![PrTerm::Proj(1, 0)]);
        assert!(compile(&bad).is_err());
    }

    #[test]
    fn goedel_coding_roundtrip() {
        for k in 0..20 {
            assert_eq!(decode_nat(&encode_nat(k)), Some(k));
        }
        assert_eq!(decode_nat(&Value::atom(3)), None);
    }
}
