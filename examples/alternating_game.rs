//! Alternating reachability (Lemma 3.6): solve an AND/OR game with the SRL
//! APATH program and compare against the native fixpoint solver and the
//! FO+LFP formula.
//!
//! Run with `cargo run -p srl-examples --bin alternating_game`.

use fo_logic::formula::library::agap_sentence;
use fo_logic::{eval_sentence, Structure};
use srl_core::eval::run_program;
use srl_core::EvalLimits;
use srl_examples::print_header;
use srl_stdlib::agap::{apath_program, names};
use workloads::altgraph::AlternatingGraph;

fn main() {
    print_header("A layered AND/OR game");
    let game = AlternatingGraph::layered_game(3, 2);
    println!("{} vertices, {} edges", game.n, game.edges.len());

    let program = apath_program();
    let (value, stats) = run_program(
        &program,
        names::AGAP,
        &[game.nodes_value(), game.edges_value(), game.ands_value()],
        EvalLimits::benchmark(),
    )
    .unwrap();
    println!(
        "SRL AGAP      = {value}  ({} reduce iterations)",
        stats.reduce_iterations
    );
    println!("native solver = {}", game.agap());
    let structure = Structure::from_alternating_graph(game.n, &game.edges, &game.universal);
    println!(
        "FO + LFP      = {}",
        eval_sentence(&structure, &agap_sentence())
    );

    print_header("A universal vertex that cannot force the target");
    let blocked = AlternatingGraph::new(4, [(0, 1), (0, 2), (1, 3)], [true, false, false, false]);
    let (value, _) = run_program(
        &program,
        names::AGAP,
        &[
            blocked.nodes_value(),
            blocked.edges_value(),
            blocked.ands_value(),
        ],
        EvalLimits::benchmark(),
    )
    .unwrap();
    println!("SRL AGAP      = {value}");
    println!("native solver = {}", blocked.agap());
}
