//! Alternating reachability in SRL (Lemma 3.6).
//!
//! Lemma 3.6 expresses APATH — the alternating-path relation of
//! Definition 3.4 — as an SRL function of set-height 1, by writing the
//! monotone operator
//!
//! ```text
//! F(R)[x, y] = (x = y) ∨ [ (∃z)(E(x,z) ∧ R(z,y)) ∧ (A(x) → (∀z)(E(x,z) → R(z,y))) ]
//! ```
//!
//! in SRL and iterating it with `set-reduce`. Because AGAP (`APATH(v₀,
//! v_max)`) is P-complete under first-order reductions (Fact 3.5), this is
//! the constructive half of `P ⊆ ℒ(SRL)` (Theorem 3.10).
//!
//! The program here takes the alternating graph as three inputs — `NODES`
//! (the vertex set), `EDGES` (the `[from, to]` pairs) and `ANDS` (the set of
//! universal vertices; the paper obtains it from the labelled edge set with
//! `project(select(...))`, which [`ands_from_labelled_edges`] also provides)
//! — and iterates one full round of `F` per vertex. A round processes every
//! pair `(x, y)` and accumulates into `R` immediately, so `|NODES|` rounds
//! reach the fixpoint (the stage of a pair for a fixed target is bounded by
//! the number of vertices); the paper's more generous `n²` iterations are
//! available through [`apath_program_with_rounds`].

use srl_core::ast::{Expr, Lambda};
use srl_core::dialect::Dialect;
use srl_core::dsl::*;
use srl_core::program::Program;

use crate::derived::{forall, forsome, map_set, member, project, select, union};

/// Names of the definitions produced by [`apath_program`].
pub mod names {
    /// `f_holds(NODES, EDGES, ANDS, x, y, R) → bool` — the operator F.
    pub const F_HOLDS: &str = "f_holds";
    /// `f_round(NODES, EDGES, ANDS, R) → relation` — one full round of F over
    /// all pairs.
    pub const F_ROUND: &str = "f_round";
    /// `apath(NODES, EDGES, ANDS) → relation` — the least fixed point.
    pub const APATH: &str = "apath";
    /// `agap(NODES, EDGES, ANDS) → bool` — `APATH(v₀, v_max)`.
    pub const AGAP: &str = "agap";
    /// `max_node(NODES) → atom` — the last vertex in the ordering.
    pub const MAX_NODE: &str = "max_node";
}

/// The body of the operator `F(x, y, R)`, as an expression with the free
/// variables `NODES`, `EDGES`, `ANDS`, `x`, `y`, `R`.
fn f_holds_body() -> Expr {
    // ∃z. E(x, z) ∧ R(z, y): scan EDGES, matching on the source and looking
    // the target up in R. The context tuple [x, y, R] travels in `extra`.
    let exists_step = forsome(
        var("EDGES"),
        lam(
            "e",
            "ctx",
            and(
                eq(sel(var("e"), 1), sel(var("ctx"), 1)),
                member(
                    tuple([sel(var("e"), 2), sel(var("ctx"), 2)]),
                    sel(var("ctx"), 3),
                ),
            ),
        ),
        tuple([var("x"), var("y"), var("R")]),
    );
    // A(x) → ∀z. E(x, z) → R(z, y).
    let universal_ok = or(
        not(member(var("x"), var("ANDS"))),
        forall(
            var("EDGES"),
            lam(
                "e",
                "ctx",
                or(
                    not(eq(sel(var("e"), 1), sel(var("ctx"), 1))),
                    member(
                        tuple([sel(var("e"), 2), sel(var("ctx"), 2)]),
                        sel(var("ctx"), 3),
                    ),
                ),
            ),
            tuple([var("x"), var("y"), var("R")]),
        ),
    );
    or(eq(var("x"), var("y")), and(exists_step, universal_ok))
}

/// Builds the APATH/AGAP program with `|NODES|` fixpoint rounds (sufficient;
/// see the module documentation).
pub fn apath_program() -> Program {
    apath_program_impl(false)
}

/// Builds the APATH/AGAP program that iterates `|NODES|²` rounds, matching
/// the paper's `ITERATE()` construction literally. Asymptotically wasteful
/// but useful for validating that the extra rounds change nothing.
pub fn apath_program_with_rounds() -> Program {
    apath_program_impl(true)
}

fn apath_program_impl(square_rounds: bool) -> Program {
    let program = Program::new(Dialect::srl());

    // max_node(NODES): the greatest vertex in the ordering.
    let program = program.define(
        names::MAX_NODE,
        ["NODES"],
        set_reduce(
            var("NODES"),
            Lambda::identity(),
            lam(
                "d",
                "best",
                if_(leq(var("best"), var("d")), var("d"), var("best")),
            ),
            choose(var("NODES")),
            empty_set(),
        ),
    );

    // f_holds(NODES, EDGES, ANDS, x, y, R).
    let program = program.define(
        names::F_HOLDS,
        ["NODES", "EDGES", "ANDS", "x", "y", "R"],
        f_holds_body(),
    );

    // f_round(NODES, EDGES, ANDS, R): for every pair (x, y) in NODES × NODES,
    // insert [x, y] when F(x, y) holds of the accumulated relation.
    let inner = set_reduce(
        var("NODES"),
        Lambda::identity(),
        lam(
            "y",
            "R2",
            if_(
                member(tuple([var("x"), var("y")]), var("R2")),
                var("R2"),
                if_(
                    call(
                        names::F_HOLDS,
                        [
                            var("NODES"),
                            var("EDGES"),
                            var("ANDS"),
                            var("x"),
                            var("y"),
                            var("R2"),
                        ],
                    ),
                    insert(tuple([var("x"), var("y")]), var("R2")),
                    var("R2"),
                ),
            ),
        ),
        var("R1"),
        empty_set(),
    );
    let program = program.define(
        names::F_ROUND,
        ["NODES", "EDGES", "ANDS", "R"],
        set_reduce(
            var("NODES"),
            Lambda::identity(),
            lam("x", "R1", inner),
            var("R"),
            empty_set(),
        ),
    );

    // apath(NODES, EDGES, ANDS): iterate f_round once per vertex (or once per
    // pair of vertices in the literal variant), starting from the empty
    // relation.
    let one_sweep = |base: Expr| {
        set_reduce(
            var("NODES"),
            Lambda::identity(),
            lam(
                "round",
                "Racc",
                call(
                    names::F_ROUND,
                    [var("NODES"), var("EDGES"), var("ANDS"), var("Racc")],
                ),
            ),
            base,
            empty_set(),
        )
    };
    let apath_body = if square_rounds {
        set_reduce(
            var("NODES"),
            Lambda::identity(),
            lam("outer_round", "Router", one_sweep(var("Router"))),
            empty_set(),
            empty_set(),
        )
    } else {
        one_sweep(empty_set())
    };
    let program = program.define(names::APATH, ["NODES", "EDGES", "ANDS"], apath_body);

    // agap(NODES, EDGES, ANDS) = member([v0, vmax], apath).
    program.define(
        names::AGAP,
        ["NODES", "EDGES", "ANDS"],
        member(
            tuple([choose(var("NODES")), call(names::MAX_NODE, [var("NODES")])]),
            call(names::APATH, [var("NODES"), var("EDGES"), var("ANDS")]),
        ),
    )
}

/// The paper's derivation of the AND-labelled vertex set from the labelled
/// edge encoding (`ANDS = project(select(EDGES, λx. x.label = AND), from)`),
/// as an expression over a labelled edge set `[[from, to], label]` and the
/// AND label value.
pub fn ands_from_labelled_edges(labelled_edges: Expr, and_label: Expr) -> Expr {
    project_from(select(
        labelled_edges,
        lam("t", "lbl", eq(sel(var("t"), 2), var("lbl"))),
        and_label,
    ))
}

/// `project(…, from)` for the labelled edge encoding: the set of `from`
/// components of the inner `[from, to]` pairs.
fn project_from(labelled: Expr) -> Expr {
    map_set(
        labelled,
        lam("t", "unused", sel(sel(var("t"), 1), 1)),
        empty_set(),
    )
}

/// The plain `[from, to]` edge set from the labelled encoding.
pub fn edges_from_labelled(labelled_edges: Expr) -> Expr {
    project(labelled_edges, 1)
}

/// Convenience: the union of two APATH relations (used by tests that compare
/// the incremental and literal iteration strategies).
pub fn relation_union(a: Expr, b: Expr) -> Expr {
    union(a, b)
}

#[cfg(test)]
mod tests {
    use super::names::*;
    use super::*;
    use srl_core::eval::run_program;
    use srl_core::limits::EvalLimits;
    use srl_core::typecheck::check_program;
    use srl_core::value::Value;
    use workloads::altgraph::AlternatingGraph;

    fn run_agap(graph: &AlternatingGraph) -> bool {
        let program = apath_program();
        let (value, _) = run_program(
            &program,
            AGAP,
            &[graph.nodes_value(), graph.edges_value(), graph.ands_value()],
            EvalLimits::benchmark(),
        )
        .expect("agap evaluation");
        value.as_bool().expect("agap returns a boolean")
    }

    fn run_apath(graph: &AlternatingGraph) -> Vec<Vec<bool>> {
        let program = apath_program();
        let (value, _) = run_program(
            &program,
            APATH,
            &[graph.nodes_value(), graph.edges_value(), graph.ands_value()],
            EvalLimits::benchmark(),
        )
        .expect("apath evaluation");
        AlternatingGraph::apath_from_value(&value, graph.n).expect("relation shape")
    }

    #[test]
    fn program_validates_and_typechecks_would_need_types() {
        let p = apath_program();
        assert!(p.validate().is_ok());
        // The untyped definitions cannot be fully type-checked (no declared
        // parameter types), but the structural validation plus evaluation
        // tests below cover the paper's claim; the typed variants live in the
        // integration tests.
        assert!(check_program(&p).is_err());
    }

    #[test]
    fn existential_graph_is_plain_reachability() {
        let g = AlternatingGraph::new(4, [(0, 1), (1, 2), (2, 3)], [false; 4]);
        assert!(run_agap(&g));
        let m = run_apath(&g);
        let native = g.apath_all();
        assert_eq!(m, native);
    }

    #[test]
    fn universal_vertex_requires_all_successors() {
        let g = AlternatingGraph::new(4, [(0, 1), (0, 2), (1, 3)], [true, false, false, false]);
        assert!(!run_agap(&g));
        let g2 = AlternatingGraph::new(
            4,
            [(0, 1), (0, 2), (1, 3), (2, 3)],
            [true, false, false, false],
        );
        assert!(run_agap(&g2));
    }

    #[test]
    fn matches_native_solver_on_random_graphs() {
        for seed in 0..4u64 {
            let g = AlternatingGraph::random(6, 0.25, seed);
            let srl = run_apath(&g);
            let native = g.apath_all();
            assert_eq!(srl, native, "seed {seed}");
        }
    }

    #[test]
    fn matches_native_solver_on_layered_games() {
        for (layers, width) in [(2, 2), (3, 2)] {
            let g = AlternatingGraph::layered_game(layers, width);
            assert!(run_agap(&g), "layers={layers} width={width}");
            assert_eq!(run_apath(&g), g.apath_all());
        }
    }

    #[test]
    fn literal_square_iteration_agrees() {
        let g = AlternatingGraph::random(5, 0.3, 42);
        let fast = apath_program();
        let slow = apath_program_with_rounds();
        let args = [g.nodes_value(), g.edges_value(), g.ands_value()];
        let (a, _) = run_program(&fast, APATH, &args, EvalLimits::benchmark()).unwrap();
        let (b, _) = run_program(&slow, APATH, &args, EvalLimits::benchmark()).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn labelled_edge_encoding_derives_ands() {
        let g = AlternatingGraph::new(3, [(0, 1), (1, 2)], [false, true, false]);
        let labelled = g.labelled_edges_value();
        let and_label = Value::atom(3); // the encoding reserves atom n for AND
        let expr = ands_from_labelled_edges(var("L"), const_v(and_label));
        let env = srl_core::program::Env::new().bind("L", labelled.clone());
        let v = srl_core::eval::eval_expr(&expr, &env, EvalLimits::default()).unwrap();
        // Vertex 1 is universal and has an outgoing edge, so it appears.
        assert_eq!(v, Value::set([Value::atom(1)]));
        // The plain edge projection recovers the [from, to] pairs.
        let edges = edges_from_labelled(var("L"));
        let v = srl_core::eval::eval_expr(&edges, &env, EvalLimits::default()).unwrap();
        assert_eq!(v, g.edges_value());
    }

    #[test]
    fn stats_show_polynomial_iteration_counts() {
        // |NODES| rounds × |NODES|² pairs: reduce iterations grow
        // polynomially, not exponentially.
        let program = apath_program();
        let mut iterations = Vec::new();
        for n in [3usize, 4, 5] {
            let g = AlternatingGraph::random(n, 0.3, 7);
            let (_, stats) = run_program(
                &program,
                APATH,
                &[g.nodes_value(), g.edges_value(), g.ands_value()],
                EvalLimits::benchmark(),
            )
            .unwrap();
            iterations.push(stats.reduce_iterations);
        }
        assert!(iterations[0] < iterations[1]);
        assert!(iterations[1] < iterations[2]);
        // Loose polynomial envelope: far below n⁶ even for these tiny sizes.
        assert!(iterations[2] < 5u64.pow(6));
    }
}
