//! The `hom` operator and the order-(in)dependence examples of Section 7.
//!
//! Machiavelli's `hom(f, op, z, {x₁, …, xₙ}) = op(f(x₁), …, op(f(xₙ), z)…)`
//! is, in the presence of an ordering and with set-height ≤ 1, interdefinable
//! with `set-reduce`; an instance is *proper* when `op` is commutative and
//! associative, in which case the result cannot depend on the traversal
//! order. This module provides:
//!
//! * [`hom`] — the operator itself (an alias for `set-reduce` with the
//!   argument roles named as in Section 7);
//! * [`count`] — Proposition 7.6's counting via proper hom (`f = λx. 1`,
//!   `op = +`), which needs the ℕ extension;
//! * [`even`] — EVEN via a proper hom over the booleans (`op = xor`), an
//!   order-independent query that (FO(wo≤)+LFP) cannot express (Fact 7.5);
//! * [`purple_first`] — the paper's order-*dependent* query
//!   `Purple(First(S))`;
//! * [`first`] / [`last`] — the order-observing helpers it is built from.

use srl_core::ast::{Expr, Lambda};
use srl_core::dsl::*;

use crate::derived::member;

/// `hom(f, op, z, S)`: Section 7's operator, realised with `set-reduce`.
/// `f` is applied to each element (its second parameter receives `extra`);
/// `op` combines an `f`-image with the accumulated result.
pub fn hom(f: Lambda, op: Lambda, z: Expr, s: Expr, extra: Expr) -> Expr {
    set_reduce(s, f, op, z, extra)
}

/// `count(S)`: the number of elements of `S`, as a natural number, via the
/// proper hom with `f = λx. 1` and `op = +` (Proposition 7.6). Requires a
/// dialect with naturals and addition.
pub fn count(s: Expr) -> Expr {
    hom(
        lam("__c_x", "__c_e", nat(1)),
        lam(
            "__c_one",
            "__c_acc",
            nat_add(var("__c_one"), var("__c_acc")),
        ),
        nat(0),
        s,
        empty_set(),
    )
}

/// `even(S)`: true iff `|S|` is even, via the proper hom with `op = xor`
/// over the booleans — order-independent and expressible without leaving
/// plain SRL.
pub fn even(s: Expr) -> Expr {
    hom(
        lam("__e_x", "__e_e", bool_(true)),
        lam(
            "__e_flip",
            "__e_acc",
            if_(var("__e_flip"), not(var("__e_acc")), var("__e_acc")),
        ),
        bool_(true),
        s,
        empty_set(),
    )
}

/// `first(S)`: the element the traversal order presents first — `choose(S)`.
/// Observing it is legitimate; *depending* on it is what Section 7 warns
/// about.
pub fn first(s: Expr) -> Expr {
    choose(s)
}

/// `last(S)`: the element the traversal order presents last.
pub fn last(s: Expr) -> Expr {
    set_reduce(
        s.clone(),
        Lambda::identity(),
        lam("__l_x", "__l_acc", var("__l_x")),
        choose(s),
        empty_set(),
    )
}

/// The paper's order-dependent boolean query `Purple(First(S))`: does the
/// element that happens to come first in the arbitrary ordering of `S`
/// satisfy the predicate (given extensionally as the set `PURPLE`)?
pub fn purple_first(s: Expr, purple: Expr) -> Expr {
    member(first(s), purple)
}

/// A genuinely order-independent variant for contrast: does *some* element
/// of `S` satisfy the predicate?
pub fn purple_some(s: Expr, purple: Expr) -> Expr {
    set_reduce(
        s,
        lam("__p_x", "__p_set", member(var("__p_x"), var("__p_set"))),
        lam("__p_hit", "__p_acc", or(var("__p_hit"), var("__p_acc"))),
        bool_(false),
        purple,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use srl_core::dialect::Dialect;
    use srl_core::eval::{eval_expr, Evaluator};
    use srl_core::limits::EvalLimits;
    use srl_core::program::{Env, Program};
    use srl_core::value::Value;
    use workloads::orderings::DomainRenaming;

    fn atoms(items: impl IntoIterator<Item = u64>) -> Value {
        Value::set(items.into_iter().map(Value::atom))
    }

    fn eval_full(expr: &Expr, env: &Env) -> Value {
        let program = Program::new(Dialect::full());
        let mut ev = Evaluator::new(&program, EvalLimits::default());
        ev.eval(expr, env).expect("evaluation succeeds")
    }

    #[test]
    fn count_matches_cardinality() {
        for n in 0..10u64 {
            let env = Env::new().bind("S", atoms(0..n));
            assert_eq!(eval_full(&count(var("S")), &env), Value::nat(n));
        }
    }

    #[test]
    fn even_matches_parity_and_is_plain_srl() {
        for n in 0..10u64 {
            let env = Env::new().bind("S", atoms(0..n));
            // `even` avoids the ℕ extension entirely, so the plain SRL
            // evaluator accepts it.
            let v = eval_expr(&even(var("S")), &env, EvalLimits::default()).unwrap();
            assert_eq!(v, Value::bool(n % 2 == 0), "n = {n}");
        }
    }

    #[test]
    fn count_and_even_are_order_independent() {
        let s = atoms([2, 5, 7, 11]);
        for seed in 0..5 {
            let renaming = DomainRenaming::random(16, seed);
            let renamed_env = Env::new().bind("S", renaming.apply(&s));
            let original_env = Env::new().bind("S", s.clone());
            assert_eq!(
                eval_full(&count(var("S")), &original_env),
                eval_full(&count(var("S")), &renamed_env)
            );
            assert_eq!(
                eval_full(&even(var("S")), &original_env),
                eval_full(&even(var("S")), &renamed_env)
            );
        }
    }

    #[test]
    fn first_and_last_observe_the_order() {
        let env = Env::new().bind("S", atoms([4, 9, 2]));
        assert_eq!(eval_full(&first(var("S")), &env), Value::atom(2));
        assert_eq!(eval_full(&last(var("S")), &env), Value::atom(9));
    }

    #[test]
    fn purple_first_is_order_dependent() {
        // PURPLE = {9}; S = {2, 9}. Under the identity order, First(S) = 2 —
        // not purple. Reverse the domain order and First becomes 9 — purple.
        // The answer flips: the query depends on the ordering.
        let s = atoms([2, 9]);
        let purple = atoms([9]);
        let env = Env::new().bind("S", s.clone()).bind("P", purple.clone());
        let q = purple_first(var("S"), var("P"));
        assert_eq!(eval_full(&q, &env), Value::bool(false));

        let renaming = DomainRenaming::reversal(10);
        let env_renamed = Env::new()
            .bind("S", renaming.apply(&s))
            .bind("P", renaming.apply(&purple));
        assert_eq!(eval_full(&q, &env_renamed), Value::bool(true));
    }

    #[test]
    fn purple_some_is_order_independent() {
        let s = atoms([2, 9]);
        let purple = atoms([9]);
        let q = purple_some(var("S"), var("P"));
        let env = Env::new().bind("S", s.clone()).bind("P", purple.clone());
        assert_eq!(eval_full(&q, &env), Value::bool(true));
        for seed in 0..5 {
            let renaming = DomainRenaming::random(12, seed);
            let env_renamed = Env::new()
                .bind("S", renaming.apply(&s))
                .bind("P", renaming.apply(&purple));
            assert_eq!(
                eval_full(&q, &env_renamed),
                Value::bool(true),
                "seed {seed}"
            );
        }
    }

    #[test]
    fn hom_with_noncommutative_op_can_depend_on_order() {
        // op = "keep the left argument" is not commutative; the hom returns
        // the image of the first element, which changes under reordering.
        let keep_left = lam("__x", "__acc", var("__x"));
        let q = hom(
            Lambda::identity(),
            keep_left,
            atom(99),
            var("S"),
            empty_set(),
        );
        let s = atoms([3, 7]);
        let env = Env::new().bind("S", s.clone());
        let original = eval_full(&q, &env);
        let renaming = DomainRenaming::reversal(8);
        let env_renamed = Env::new().bind("S", renaming.apply(&s));
        let renamed = eval_full(&q, &env_renamed);
        // 3 ↦ 4 and 7 ↦ 0 under reversal of {0..7}; the "last-combined"
        // element differs, so the raw results differ even after undoing the
        // renaming.
        assert_ne!(renaming.apply(&original), renamed);
    }
}
