//! Quick wall-clock probe for the reduce-heavy experiments (E2 powerset,
//! E5 TC/DTC, E9 relational join) and the E7 TM simulation at their largest
//! report sizes, used to compare pre/post-refactor timings in the same
//! environment (see `crates/README.md` and `BENCH_2.json` for the recorded
//! numbers).
//!
//! For E2 and E7 two numbers are printed: `run_program` (compile + evaluate,
//! the convenience path) and `with_compiled` (program lowered once, evaluated
//! many times — the intended hot path). E5 and E9 are expression workloads:
//! the evaluator is constructed and the expression lowered once, outside the
//! timer, so only `eval_lowered` is timed.

use std::sync::Arc;
use std::time::Instant;

use srl_core::eval::{run_program, Evaluator};
use srl_core::limits::EvalLimits;
use srl_core::program::{Env, Program};
use srl_core::value::Value;

fn main() {
    // E2 powerset at n = 12 (largest report seed size).
    {
        use srl_stdlib::blowup::{names, powerset_program};
        let program = powerset_program();
        let input = Value::set((0..12u64).map(Value::atom));
        let t = Instant::now();
        let r = run_program(
            &program,
            names::POWERSET,
            &[input.clone()],
            EvalLimits::default(),
        );
        let dt = t.elapsed();
        let steps = r.as_ref().map(|(_, s)| s.steps).unwrap_or(0);
        println!(
            "E2 powerset n=12 run_program: {dt:?} ({}, steps={steps})",
            if r.is_ok() { "ok" } else { "resource wall" },
        );
        let compiled = Arc::new(program.compile());
        let t = Instant::now();
        let mut ev = Evaluator::with_compiled(&program, compiled, EvalLimits::default())
            .expect("compiled from this program");
        ev.call(names::POWERSET, &[input]).expect("powerset evaluates");
        println!("E2 powerset n=12 with_compiled: {:?}", t.elapsed());
    }
    // E5 TC/DTC at n = 14 (largest report seed size), lowered once.
    {
        use workloads::digraph::Digraph;
        let n = 14usize;
        let g = Digraph::random(n, 2.0 / n as f64, 23 + n as u64);
        let env = Env::new()
            .bind("D", g.vertices_value())
            .bind("E", g.edges_value());
        let program = Program::new(srl_core::Dialect::full());
        let compiled = Arc::new(program.compile());
        let exprs = [srl_bench::queries::tc_query(), srl_bench::queries::dtc_query()];
        let mut ev =
            Evaluator::with_compiled(&program, Arc::clone(&compiled), EvalLimits::benchmark())
                .expect("compiled from this program");
        let lowered: Vec<_> = exprs.iter().map(|e| ev.lower(e, &env)).collect();
        const RUNS: u32 = 5;
        let t = Instant::now();
        for _ in 0..RUNS {
            for l in &lowered {
                ev.reset_stats();
                ev.eval_lowered(l, &env).expect("TC/DTC evaluates");
            }
        }
        println!("E5 tc+dtc n=14 eval_lowered ({RUNS} runs): {:?}", t.elapsed());
    }
    // E7 TM simulation at n = 32 (largest report seed size).
    {
        use machines::tm::library::{even_parity, SYM_A, SYM_B};
        use srl_stdlib::tm_sim::{compile, encode_input, names, position_domain};
        let machine = even_parity();
        let program = compile(&machine);
        let n = 32usize;
        let input: Vec<u8> = (0..n)
            .map(|i| if i % 3 == 0 { SYM_A } else { SYM_B })
            .collect();
        let args = [position_domain(n), encode_input(&input)];
        const RUNS: u32 = 10;
        let t = Instant::now();
        for _ in 0..RUNS {
            run_program(&program, names::ACCEPTS, &args, EvalLimits::benchmark())
                .expect("simulation evaluates");
        }
        println!("E7 tm_sim n=32 run_program ({RUNS} runs): {:?}", t.elapsed());
        let compiled = Arc::new(program.compile());
        let mut ev =
            Evaluator::with_compiled(&program, Arc::clone(&compiled), EvalLimits::benchmark())
                .expect("compiled from this program");
        let t = Instant::now();
        for _ in 0..RUNS {
            ev.reset_stats();
            ev.call(names::ACCEPTS, &args).expect("simulation evaluates");
        }
        println!("E7 tm_sim n=32 with_compiled ({RUNS} runs): {:?}", t.elapsed());
    }
    // E9 relational join at n = 64 (largest bench size), lowered once.
    {
        use workloads::tables::CompanyDatabase;
        let n = 64usize;
        let db = CompanyDatabase::generate(n, (n / 4).max(1), 4, 31 + n as u64);
        let env = Env::new()
            .bind("EMP", db.employees_value())
            .bind("DEPT", db.departments_value());
        let joined = srl_bench::queries::company_join();
        let program = Program::new(srl_core::Dialect::full());
        let compiled = Arc::new(program.compile());
        let mut ev =
            Evaluator::with_compiled(&program, Arc::clone(&compiled), EvalLimits::benchmark())
                .expect("compiled from this program");
        let lowered = ev.lower(&joined, &env);
        const RUNS: u32 = 20;
        let t = Instant::now();
        for _ in 0..RUNS {
            ev.reset_stats();
            ev.eval_lowered(&lowered, &env).expect("join evaluates");
        }
        println!("E9 join n=64 eval_lowered ({RUNS} runs): {:?}", t.elapsed());
    }
}
