//! Proposition 6.2: compile a DTIME(n) Turing machine to an SRL program and
//! run both side by side.
//!
//! Run with `cargo run -p srl-examples --bin turing_simulation`.

use machines::tm::library::{encode_word, even_parity};
use srl_core::eval::run_program;
use srl_core::EvalLimits;
use srl_examples::print_header;
use srl_stdlib::tm_sim::{compile, encode_input, names, position_domain};

fn main() {
    let machine = even_parity();
    let program = compile(&machine);
    print_header("Simulating the even-parity machine in SRL");
    for word in ["", "a", "ab", "aab", "abab", "aaab"] {
        let input = encode_word(word);
        let native = machine.accepts(&input, 10_000);
        let (value, stats) = run_program(
            &program,
            names::ACCEPTS,
            &[position_domain(input.len()), encode_input(&input)],
            EvalLimits::benchmark(),
        )
        .unwrap();
        println!(
            "input {word:?}: SRL accepts = {value}, native accepts = {native}  ({} reduce iterations)",
            stats.reduce_iterations
        );
    }
    println!("\nThe SRL expression has width 2 and depth 3 as in Proposition 6.2; its measured cost grows ~ n², far below the syntactic n⁶ bound.");
}
