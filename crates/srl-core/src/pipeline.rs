//! The staged compile path: `Source → Program → Checked → Compiled`.
//!
//! Before this module, every consumer wired the stages together by hand —
//! `Program::validate` here, `check_program` there, `Program::compile` plus
//! `Evaluator::with_compiled` somewhere else — and each harness picked its
//! own subset. A [`Pipeline`] owns the cross-cutting choices (dialect
//! override, type-checking policy, [`EvalLimits`] budget, [`ExecBackend`])
//! and drives every program through the same audited sequence:
//!
//! ```text
//! Source ──parse──▶ Program ──check──▶ Checked ──compile──▶ Compiled
//!  (text)           (AST)              (validated,          (lowered arena,
//!                                       signatures)          interner, lazy
//!                                                            bytecode chunks)
//! ```
//!
//! The *parse* stage lives in the `srl-syntax` crate (this crate has no
//! dependency on the text syntax): `srl-syntax`'s `TextFrontend` extension
//! trait turns a [`Source`] into a `Program` and hands it to
//! [`Pipeline::check`]. DSL-built programs enter at the same point, so text
//! input and Rust-built input flow through one path from there on.
//!
//! A [`Compiled`] artifact owns the shared [`CompiledProgram`] (which holds
//! the symbol interner and lazily caches the VM's bytecode chunks) together
//! with the limits and backend the pipeline chose, so
//! [`Compiled::evaluator`] hands out correctly-configured evaluators — the
//! program↔compiled pairing is guaranteed by construction. The previous
//! entry point, [`check_and_compile`](crate::typecheck::check_and_compile),
//! now delegates here.

use std::sync::Arc;

use crate::ast::Expr;
use crate::dialect::Dialect;
use crate::error::{CheckError, EvalError};
use crate::eval::{Evaluator, ExecBackend};
use crate::limits::{EvalLimits, EvalStats};
use crate::lower::{CompiledProgram, LoweredExpr};
use crate::program::{Env, Program};
use crate::typecheck::{check_program, CheckedProgram};
use crate::value::Value;

/// A named piece of source text — the entry stage of the pipeline. Parsing
/// it into a [`Program`] is the `srl-syntax` crate's job; the name travels
/// along so diagnostics can point at `powerset.srl:3:14` rather than at
/// anonymous text.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Source {
    /// Display name of the source (file path, `<repl>`, `<inline>`, …).
    pub name: String,
    /// The program text.
    pub text: String,
}

impl Source {
    /// Wraps a name and text.
    pub fn new(name: impl Into<String>, text: impl Into<String>) -> Self {
        Source {
            name: name.into(),
            text: text.into(),
        }
    }
}

/// When the checking stage runs the type checker.
///
/// The paper's typing rules need declared parameter types, but most
/// reconstructed programs are built untyped (the evaluator is dynamically
/// checked and the surface syntax has no type annotations), so requiring
/// types everywhere would reject almost every real input.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum TypePolicy {
    /// Type-check always; programs with untyped parameters are rejected.
    Require,
    /// Type-check exactly the programs whose parameters all carry declared
    /// types; validate (well-formedness) everything else. The default.
    #[default]
    IfTyped,
    /// Never type-check; structural validation only.
    Skip,
}

/// The complete cross-cutting configuration of a [`Pipeline`] as one
/// plain, cloneable value — the unit of tenant configuration.
///
/// The pipeline's builder chain (`Pipeline::new().with_limits(…)
/// .with_backend(…)…`) is fine for one-off construction, but every
/// long-lived consumer (the CLI, the REPL session, the bench `Harness`, an
/// `srl-serve` tenant) needs to hold, compare, clone and transport the
/// *choices* independently of the pipeline built from them. This struct is
/// those choices; [`PipelineConfig::pipeline`] builds the pipeline, and
/// `srl_core::api::pipeline_config_from_json` deserializes one from the
/// JSON object form used by per-tenant server configuration files.
///
/// `tiers` is the columnar-storage-tier switch. It is deliberately *not*
/// consumed by [`PipelineConfig::pipeline`]: the toggle is thread-local
/// state (see [`crate::setrepr::set_atom_tier_enabled`]), so the consumer
/// that owns the evaluating thread applies it around each query.
#[derive(Clone, Debug, PartialEq)]
pub struct PipelineConfig {
    /// Dialect override for every entering program; `None` keeps each
    /// program's own dialect.
    pub dialect: Option<Dialect>,
    /// When the check stage runs the type checker.
    pub type_policy: TypePolicy,
    /// The evaluation budget (including the wall-clock deadline, the
    /// admission-control knob of a serving deployment).
    pub limits: EvalLimits,
    /// The execution backend, including the worker-pool width.
    pub backend: ExecBackend,
    /// Whether the columnar set-storage tiers may engage (default true).
    pub tiers: bool,
}

impl Default for PipelineConfig {
    fn default() -> Self {
        PipelineConfig {
            dialect: None,
            type_policy: TypePolicy::default(),
            limits: EvalLimits::default(),
            backend: ExecBackend::default(),
            tiers: true,
        }
    }
}

impl PipelineConfig {
    /// A fresh default configuration.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the dialect override.
    pub fn with_dialect(mut self, dialect: Dialect) -> Self {
        self.dialect = Some(dialect);
        self
    }

    /// Sets the type-checking policy.
    pub fn with_type_policy(mut self, policy: TypePolicy) -> Self {
        self.type_policy = policy;
        self
    }

    /// Sets the evaluation budget.
    pub fn with_limits(mut self, limits: EvalLimits) -> Self {
        self.limits = limits;
        self
    }

    /// Arms a wall-clock deadline of `ms` milliseconds on the budget.
    pub fn deadline_ms(mut self, ms: u64) -> Self {
        self.limits = self.limits.with_deadline_ms(ms);
        self
    }

    /// Sets the execution backend.
    pub fn with_backend(mut self, backend: ExecBackend) -> Self {
        self.backend = backend;
        self
    }

    /// Selects an `n`-worker VM pool (like [`Pipeline::threads`], this
    /// implies the VM backend).
    pub fn threads(mut self, n: usize) -> Self {
        self.backend = ExecBackend::vm_with_threads(n);
        self
    }

    /// Enables or disables the columnar storage tiers.
    pub fn with_tiers(mut self, on: bool) -> Self {
        self.tiers = on;
        self
    }

    /// Builds the pipeline these choices describe. (`tiers` is thread-local
    /// execution state, applied by the evaluating consumer — see the struct
    /// docs.)
    pub fn pipeline(&self) -> Pipeline {
        let mut pipeline = Pipeline::new()
            .with_limits(self.limits)
            .with_backend(self.backend)
            .with_type_policy(self.type_policy);
        if let Some(dialect) = self.dialect {
            pipeline = pipeline.with_dialect(dialect);
        }
        pipeline
    }
}

/// The staged compile path with its cross-cutting configuration.
///
/// Cheap to construct and `Clone`; a long-lived service would typically hold
/// one per dialect/budget configuration (a "session") and push every
/// incoming program through it — [`PipelineConfig`] is that configuration
/// as a first-class value.
#[derive(Clone, Debug)]
pub struct Pipeline {
    dialect: Option<Dialect>,
    limits: EvalLimits,
    backend: ExecBackend,
    type_policy: TypePolicy,
}

impl Default for Pipeline {
    fn default() -> Self {
        Self::new()
    }
}

impl Pipeline {
    /// A pipeline with default limits, the default execution backend, no
    /// dialect override, and the [`TypePolicy::IfTyped`] checking policy.
    pub fn new() -> Self {
        Pipeline {
            dialect: None,
            limits: EvalLimits::default(),
            backend: ExecBackend::default(),
            type_policy: TypePolicy::default(),
        }
    }

    /// Overrides the dialect of every program entering the pipeline (the
    /// parse stage records [`Dialect::full`] by default; a service enforcing
    /// e.g. BASRL submissions would set it here).
    pub fn with_dialect(mut self, dialect: Dialect) -> Self {
        self.dialect = Some(dialect);
        self
    }

    /// Sets the evaluation budget configured into produced evaluators.
    pub fn with_limits(mut self, limits: EvalLimits) -> Self {
        self.limits = limits;
        self
    }

    /// Arms a wall-clock deadline of `ms` milliseconds on every evaluation
    /// run by produced evaluators (shorthand for
    /// [`EvalLimits::with_deadline_ms`] on the configured budget). A query
    /// that overruns it fails with
    /// [`EvalError::DeadlineExceeded`](crate::error::EvalError::DeadlineExceeded)
    /// and leaves the evaluator reusable.
    pub fn deadline_ms(mut self, ms: u64) -> Self {
        self.limits = self.limits.with_deadline_ms(ms);
        self
    }

    /// Sets the execution backend configured into produced evaluators.
    pub fn with_backend(mut self, backend: ExecBackend) -> Self {
        self.backend = backend;
        self
    }

    /// Sets the worker-pool width for provably-splittable `set-reduce`
    /// folds (see [`crate::parallel`]): produced evaluators run the VM
    /// backend with `n` threads (`n ≤ 1` means sequential). Selecting a
    /// pool implies the VM backend — the tree-walk has no sharded
    /// execution path — so this overrides a previously chosen
    /// [`ExecBackend::TreeWalk`]. The thread count is pure execution
    /// strategy: results and `EvalStats` are byte-identical across the
    /// whole axis.
    pub fn threads(mut self, n: usize) -> Self {
        self.backend = ExecBackend::vm_with_threads(n);
        self
    }

    /// Sets the type-checking policy of the check stage.
    pub fn with_type_policy(mut self, policy: TypePolicy) -> Self {
        self.type_policy = policy;
        self
    }

    /// The dialect override, if any.
    pub fn dialect(&self) -> Option<Dialect> {
        self.dialect
    }

    /// The evaluation budget.
    pub fn limits(&self) -> EvalLimits {
        self.limits
    }

    /// The execution backend.
    pub fn backend(&self) -> ExecBackend {
        self.backend
    }

    /// The type-checking policy.
    pub fn type_policy(&self) -> TypePolicy {
        self.type_policy
    }

    /// The check stage: applies the dialect override, validates structural
    /// well-formedness (no recursion, no unbound names, no duplicates), and
    /// type-checks according to the [`TypePolicy`].
    pub fn check(&self, mut program: Program) -> Result<Checked, CheckError> {
        if let Some(dialect) = self.dialect {
            program.dialect = dialect;
        }
        program.validate()?;
        let signatures = match self.type_policy {
            TypePolicy::Require => Some(check_program(&program)?),
            TypePolicy::IfTyped => {
                // Opting in requires at least one declared parameter type:
                // a program of zero-parameter definitions carries no
                // annotations (the surface syntax cannot even write them),
                // so `all(…)` holding vacuously must not force the checker.
                let mut saw_typed = false;
                let mut saw_untyped = false;
                for param in program.defs.iter().flat_map(|def| def.params.iter()) {
                    match param.ty {
                        Some(_) => saw_typed = true,
                        None => saw_untyped = true,
                    }
                }
                if saw_typed && !saw_untyped {
                    Some(check_program(&program)?)
                } else {
                    None
                }
            }
            TypePolicy::Skip => None,
        };
        Ok(Checked {
            program,
            signatures,
        })
    }

    /// The compile stage: lowers a checked program once into the shared
    /// slot-indexed arena (interned symbols; bytecode chunks are generated
    /// lazily on first VM use) and pairs it with this pipeline's limits and
    /// backend.
    pub fn compile(&self, checked: Checked) -> Compiled {
        let compiled = Arc::new(checked.program.compile());
        Compiled {
            program: checked.program,
            signatures: checked.signatures,
            compiled,
            limits: self.limits,
            backend: self.backend,
        }
    }

    /// Check + compile in one step — the common path.
    pub fn prepare(&self, program: Program) -> Result<Compiled, CheckError> {
        Ok(self.compile(self.check(program)?))
    }
}

/// A program that has passed the check stage: structurally valid, dialect
/// recorded, and — when the [`TypePolicy`] ran the checker — carrying the
/// inferred signatures.
#[derive(Clone, Debug)]
pub struct Checked {
    program: Program,
    signatures: Option<CheckedProgram>,
}

impl Checked {
    /// The validated program.
    pub fn program(&self) -> &Program {
        &self.program
    }

    /// Inferred definition signatures, when the type checker ran.
    pub fn signatures(&self) -> Option<&CheckedProgram> {
        self.signatures.as_ref()
    }

    /// Decomposes the stage into its parts.
    pub fn into_parts(self) -> (Program, Option<CheckedProgram>) {
        (self.program, self.signatures)
    }
}

/// The end of the pipeline: a validated program plus its shared compiled
/// form, limits, and backend — everything needed to mint evaluators whose
/// program↔compiled pairing is correct by construction.
#[derive(Clone, Debug)]
pub struct Compiled {
    program: Program,
    signatures: Option<CheckedProgram>,
    compiled: Arc<CompiledProgram>,
    limits: EvalLimits,
    backend: ExecBackend,
}

impl Compiled {
    /// The validated program.
    pub fn program(&self) -> &Program {
        &self.program
    }

    /// Inferred definition signatures, when the type checker ran.
    pub fn signatures(&self) -> Option<&CheckedProgram> {
        self.signatures.as_ref()
    }

    /// The shared compiled form (lowered arena, interner, lazy chunks).
    pub fn compiled(&self) -> &Arc<CompiledProgram> {
        &self.compiled
    }

    /// The evaluation budget evaluators are minted with.
    pub fn limits(&self) -> EvalLimits {
        self.limits
    }

    /// The execution backend evaluators are minted with.
    pub fn backend(&self) -> ExecBackend {
        self.backend
    }

    /// A fresh evaluator over the shared compiled form, configured with the
    /// pipeline's limits and backend. Compilation cost is amortised: every
    /// evaluator from this artifact borrows the same arena and bytecode.
    pub fn evaluator(&self) -> Evaluator {
        Evaluator::with_compiled(&self.program, Arc::clone(&self.compiled), self.limits)
            .expect("a Compiled artifact pairs a program with its own compiled form")
            .with_backend(self.backend)
    }

    /// One-shot convenience: calls a named definition on argument values
    /// with a fresh evaluator, returning the result and the statistics of
    /// this call alone.
    pub fn call(&self, name: &str, args: &[Value]) -> Result<(Value, EvalStats), EvalError> {
        let mut evaluator = self.evaluator();
        let value = evaluator.call(name, args)?;
        Ok((value, *evaluator.stats()))
    }

    /// One-shot convenience: evaluates an expression whose free variables
    /// are bound by `env`.
    pub fn eval(&self, expr: &Expr, env: &Env) -> Result<(Value, EvalStats), EvalError> {
        let mut evaluator = self.evaluator();
        let value = evaluator.eval(expr, env)?;
        Ok((value, *evaluator.stats()))
    }

    /// Lowers a stand-alone expression against `scope` (input names in
    /// binding order) for repeated evaluation — see
    /// [`Evaluator::eval_lowered`].
    pub fn lower_expr(&self, expr: &Expr, scope: &[&str]) -> LoweredExpr {
        self.compiled.lower_expr(expr, scope)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dsl::*;
    use crate::types::Type;

    fn member_program() -> Program {
        Program::srl().define(
            "member",
            ["S", "t"],
            set_reduce(
                var("S"),
                lam("x", "e", eq(var("x"), var("e"))),
                lam("found", "acc", or(var("found"), var("acc"))),
                bool_(false),
                var("t"),
            ),
        )
    }

    #[test]
    fn prepare_validates_and_compiles() {
        let artifact = Pipeline::new().prepare(member_program()).unwrap();
        let set = Value::set([Value::atom(1), Value::atom(4)]);
        let (v, stats) = artifact.call("member", &[set, Value::atom(4)]).unwrap();
        assert_eq!(v, Value::bool(true));
        assert!(stats.reduce_iterations > 0);
    }

    #[test]
    fn check_stage_rejects_malformed_programs() {
        let recursive = Program::srl().define("f", ["x"], call("f", [var("x")]));
        assert!(matches!(
            Pipeline::new().check(recursive),
            Err(CheckError::RecursiveDefinition(_))
        ));
    }

    #[test]
    fn dialect_override_is_applied() {
        let pipeline = Pipeline::new().with_dialect(Dialect::basrl());
        let checked = pipeline.check(member_program()).unwrap();
        assert_eq!(checked.program().dialect, Dialect::basrl());
    }

    #[test]
    fn untyped_programs_skip_type_checking_under_if_typed() {
        let checked = Pipeline::new().check(member_program()).unwrap();
        assert!(checked.signatures().is_none());
    }

    #[test]
    fn zero_parameter_programs_are_not_vacuously_typed() {
        // All-zero-param defs make `params.all(typed)` hold vacuously; the
        // checker must still be skipped — this body is dynamically fine but
        // the static rules reject the heterogeneous set.
        let program = Program::new(Dialect::full()).define(
            "main",
            Vec::<String>::new(),
            insert(atom(1), insert(nat(5), empty_set())),
        );
        let artifact = Pipeline::new().prepare(program).unwrap();
        let (v, _) = artifact.call("main", &[]).unwrap();
        assert_eq!(v, Value::set([Value::atom(1), Value::nat(5)]));
    }

    #[test]
    fn typed_programs_are_checked_under_if_typed() {
        let program = Program::srl().define_typed(
            "first",
            [("t", Type::tuple_of([Type::Atom, Type::Atom]))],
            sel(var("t"), 1),
        );
        let checked = Pipeline::new().check(program).unwrap();
        let sigs = checked
            .signatures()
            .expect("fully typed program is checked");
        assert_eq!(sigs.signatures["first"].ret, Type::Atom);
    }

    #[test]
    fn require_policy_rejects_untyped_parameters() {
        let result = Pipeline::new()
            .with_type_policy(TypePolicy::Require)
            .check(member_program());
        assert!(matches!(result, Err(CheckError::TypeMismatch { .. })));
    }

    #[test]
    fn both_backends_agree_through_the_pipeline() {
        let program = member_program();
        let set = Value::set((0..16).map(Value::atom));
        let args = [set, Value::atom(11)];
        let mut results = Vec::new();
        for backend in [ExecBackend::TreeWalk, ExecBackend::vm()] {
            let artifact = Pipeline::new()
                .with_backend(backend)
                .prepare(program.clone())
                .unwrap();
            results.push(artifact.call("member", &args).unwrap());
        }
        assert_eq!(results[0], results[1], "value and stats must match");
    }

    #[test]
    fn pipeline_config_builds_an_equivalent_pipeline() {
        let config = PipelineConfig::new()
            .with_dialect(Dialect::basrl())
            .with_type_policy(TypePolicy::Skip)
            .with_limits(EvalLimits::small())
            .deadline_ms(250)
            .threads(3);
        let pipeline = config.pipeline();
        assert_eq!(pipeline.dialect(), Some(Dialect::basrl()));
        assert_eq!(pipeline.type_policy(), TypePolicy::Skip);
        assert_eq!(pipeline.limits(), EvalLimits::small().with_deadline_ms(250));
        assert_eq!(pipeline.backend(), ExecBackend::vm_with_threads(3));
        // The config itself stays comparable and cloneable.
        assert_eq!(config, config.clone());
        assert_ne!(config, PipelineConfig::default());
    }

    #[test]
    fn default_config_matches_the_default_pipeline() {
        let pipeline = PipelineConfig::default().pipeline();
        let fresh = Pipeline::new();
        assert_eq!(pipeline.dialect(), fresh.dialect());
        assert_eq!(pipeline.limits(), fresh.limits());
        assert_eq!(pipeline.backend(), fresh.backend());
        assert_eq!(pipeline.type_policy(), fresh.type_policy());
    }

    #[test]
    fn evaluators_share_one_compiled_form() {
        let artifact = Pipeline::new().prepare(member_program()).unwrap();
        let before = Arc::strong_count(artifact.compiled());
        let _e1 = artifact.evaluator();
        let _e2 = artifact.evaluator();
        assert_eq!(Arc::strong_count(artifact.compiled()), before + 2);
    }
}
