//! Quick wall-clock probe for E2 (powerset) and E7 (TM simulation) at their
//! largest report sizes, used to compare pre/post-refactor timings in the
//! same environment (see `crates/README.md` for the recorded numbers).
//!
//! Two numbers per experiment: `run_program` (compile + evaluate, the
//! convenience path) and `with_compiled` (program lowered once, evaluated
//! many times — the intended hot path).

use std::sync::Arc;
use std::time::Instant;

use srl_core::eval::{run_program, Evaluator};
use srl_core::limits::EvalLimits;
use srl_core::value::Value;

fn main() {
    // E2 powerset at n = 12 (largest report seed size).
    {
        use srl_stdlib::blowup::{names, powerset_program};
        let program = powerset_program();
        let input = Value::set((0..12u64).map(Value::atom));
        let t = Instant::now();
        let r = run_program(
            &program,
            names::POWERSET,
            &[input.clone()],
            EvalLimits::default(),
        );
        let dt = t.elapsed();
        let steps = r.as_ref().map(|(_, s)| s.steps).unwrap_or(0);
        println!(
            "E2 powerset n=12 run_program: {dt:?} ({}, steps={steps})",
            if r.is_ok() { "ok" } else { "resource wall" },
        );
        let compiled = Arc::new(program.compile());
        let t = Instant::now();
        let mut ev = Evaluator::with_compiled(&program, compiled, EvalLimits::default());
        ev.call(names::POWERSET, &[input]).expect("powerset evaluates");
        println!("E2 powerset n=12 with_compiled: {:?}", t.elapsed());
    }
    // E7 TM simulation at n = 32 (largest report seed size).
    {
        use machines::tm::library::{even_parity, SYM_A, SYM_B};
        use srl_stdlib::tm_sim::{compile, encode_input, names, position_domain};
        let machine = even_parity();
        let program = compile(&machine);
        let n = 32usize;
        let input: Vec<u8> = (0..n)
            .map(|i| if i % 3 == 0 { SYM_A } else { SYM_B })
            .collect();
        let args = [position_domain(n), encode_input(&input)];
        const RUNS: u32 = 10;
        let t = Instant::now();
        for _ in 0..RUNS {
            run_program(&program, names::ACCEPTS, &args, EvalLimits::benchmark())
                .expect("simulation evaluates");
        }
        println!("E7 tm_sim n=32 run_program ({RUNS} runs): {:?}", t.elapsed());
        let compiled = Arc::new(program.compile());
        let t = Instant::now();
        for _ in 0..RUNS {
            let mut ev =
                Evaluator::with_compiled(&program, Arc::clone(&compiled), EvalLimits::benchmark());
            ev.call(names::ACCEPTS, &args).expect("simulation evaluates");
        }
        println!("E7 tm_sim n=32 with_compiled ({RUNS} runs): {:?}", t.elapsed());
    }
}
