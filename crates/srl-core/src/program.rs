//! Programs: ordered collections of named function definitions.
//!
//! Definition 2.1 closes the class of set-reduce functions under
//! *composition* and the set-reduce operation — not under general recursion.
//! A [`Program`] therefore is a list of definitions in which each definition
//! may call only *earlier* definitions; validation rejects self-reference,
//! forward reference, and mutual recursion. Evaluating a program means
//! calling one of its definitions on argument values, or evaluating a main
//! expression whose free variables name the input sets/relations
//! ("the input to any set-reduce expression is a structure or database
//! specified by the name(s) of set(s) or relation(s)").

use std::collections::BTreeMap;
use std::sync::Arc;

use crate::ast::Expr;
use crate::dialect::Dialect;
use crate::error::CheckError;
use crate::lower::CompiledProgram;
use crate::types::Type;
use crate::value::Value;

/// A formal parameter of a definition.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Param {
    /// Parameter name.
    pub name: String,
    /// Declared type, if any. Type checking requires declared types; the
    /// evaluator does not.
    pub ty: Option<Type>,
}

impl Param {
    /// An untyped parameter.
    pub fn untyped(name: impl Into<String>) -> Self {
        Param {
            name: name.into(),
            ty: None,
        }
    }

    /// A typed parameter.
    pub fn typed(name: impl Into<String>, ty: Type) -> Self {
        Param {
            name: name.into(),
            ty: Some(ty),
        }
    }
}

/// A named function definition.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct FunDef {
    /// Function name.
    pub name: String,
    /// Formal parameters, in order.
    pub params: Vec<Param>,
    /// Body expression; its free variables must be parameter names.
    pub body: Expr,
}

/// A program: a dialect plus an ordered list of definitions.
///
/// Definitions are held behind [`Arc`] so that programs — which are routinely
/// spliced together with [`Program::extend_with`] and cloned into harnesses —
/// share their ASTs instead of deep-copying them. The evaluator never touches
/// these at run time: [`Program::compile`] lowers them once into a
/// [`CompiledProgram`] (interned names, slot-indexed variables).
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Program {
    /// The dialect the program claims to live in.
    pub dialect: Dialect,
    /// Definitions, in dependency order (later may call earlier).
    pub defs: Vec<Arc<FunDef>>,
}

impl Program {
    /// An empty program in the given dialect.
    pub fn new(dialect: Dialect) -> Self {
        Program {
            dialect,
            defs: Vec::new(),
        }
    }

    /// An empty program in the paper's default dialect (SRL).
    pub fn srl() -> Self {
        Self::new(Dialect::srl())
    }

    /// Adds a definition with untyped parameters and returns `self` for
    /// chaining.
    pub fn define<S: Into<String>>(
        mut self,
        name: impl Into<String>,
        params: impl IntoIterator<Item = S>,
        body: Expr,
    ) -> Self {
        self.defs.push(Arc::new(FunDef {
            name: name.into(),
            params: params.into_iter().map(|p| Param::untyped(p)).collect(),
            body,
        }));
        self
    }

    /// Adds a definition with typed parameters and returns `self`.
    pub fn define_typed(
        mut self,
        name: impl Into<String>,
        params: impl IntoIterator<Item = (&'static str, Type)>,
        body: Expr,
    ) -> Self {
        self.defs.push(Arc::new(FunDef {
            name: name.into(),
            params: params
                .into_iter()
                .map(|(n, t)| Param::typed(n, t))
                .collect(),
            body,
        }));
        self
    }

    /// Adds an already-built definition.
    pub fn with_def(mut self, def: FunDef) -> Self {
        self.defs.push(Arc::new(def));
        self
    }

    /// Appends every definition of `other` (used to splice stdlib prologues
    /// in front of paper programs). Sharing, not copying: each appended
    /// definition is an `Arc` clone.
    pub fn extend_with(mut self, other: &Program) -> Self {
        for def in &other.defs {
            if self.lookup(&def.name).is_none() {
                self.defs.push(Arc::clone(def));
            }
        }
        self
    }

    /// Looks up a definition by name (first definition wins).
    pub fn lookup(&self, name: &str) -> Option<&FunDef> {
        self.defs.iter().find(|d| d.name == name).map(|d| &**d)
    }

    /// Lowers the program once into its compiled form: interned definition
    /// and parameter names, slot-indexed variables, definition-indexed calls.
    /// Infallible — dangling names become poison nodes that only error if
    /// evaluated (see [`crate::lower`]). Use with
    /// [`Evaluator::with_compiled`](crate::eval::Evaluator::with_compiled) to
    /// amortise lowering across many evaluations.
    pub fn compile(&self) -> CompiledProgram {
        CompiledProgram::compile(self)
    }

    /// Names of all definitions, in order.
    pub fn def_names(&self) -> Vec<&str> {
        self.defs.iter().map(|d| d.name.as_str()).collect()
    }

    /// Total AST size over all definitions.
    pub fn node_count(&self) -> usize {
        self.defs.iter().map(|d| d.body.node_count()).sum()
    }

    /// Checks structural well-formedness:
    ///
    /// * no duplicate definition names;
    /// * every call inside a definition body resolves to a *strictly earlier*
    ///   definition (so composition is available but recursion is not);
    /// * every free variable of a definition body is one of its parameters.
    pub fn validate(&self) -> Result<(), CheckError> {
        let mut seen: BTreeMap<&str, usize> = BTreeMap::new();
        for (i, def) in self.defs.iter().enumerate() {
            if seen.contains_key(def.name.as_str()) {
                return Err(CheckError::DuplicateDefinition(def.name.clone()));
            }
            for called in def.body.called_functions() {
                match seen.get(called.as_str()) {
                    Some(&j) if j < i => {}
                    Some(_) | None => {
                        if called == def.name {
                            return Err(CheckError::RecursiveDefinition(def.name.clone()));
                        }
                        // Forward reference or unknown — both are rejected, and a
                        // forward reference to a later def is reported as recursion
                        // (it is what would make the call graph cyclic in general).
                        if self.lookup(&called).is_some() {
                            return Err(CheckError::RecursiveDefinition(def.name.clone()));
                        }
                        return Err(CheckError::UnknownFunction(called));
                    }
                }
            }
            let params: Vec<&str> = def.params.iter().map(|p| p.name.as_str()).collect();
            for fv in def.body.free_variables() {
                if !params.contains(&fv.as_str()) {
                    return Err(CheckError::UnboundVariable(format!(
                        "{fv} (in definition `{}`)",
                        def.name
                    )));
                }
            }
            seen.insert(def.name.as_str(), i);
        }
        Ok(())
    }

    /// Checks arity of a prospective call.
    pub fn check_call_arity(&self, name: &str, nargs: usize) -> Result<(), CheckError> {
        let def = self
            .lookup(name)
            .ok_or_else(|| CheckError::UnknownFunction(name.to_string()))?;
        if def.params.len() != nargs {
            return Err(CheckError::ArityMismatch {
                name: name.to_string(),
                expected: def.params.len(),
                found: nargs,
            });
        }
        Ok(())
    }
}

/// An input environment: bindings from free variable names (the input
/// relations / sets / constants of a query) to values.
#[derive(Clone, Default, Debug, PartialEq, Eq)]
pub struct Env {
    bindings: Vec<(String, Value)>,
}

impl Env {
    /// The empty environment.
    pub fn new() -> Self {
        Env::default()
    }

    /// Returns a copy with an extra binding (later bindings shadow earlier
    /// ones).
    pub fn bind(mut self, name: impl Into<String>, value: Value) -> Self {
        self.bindings.push((name.into(), value));
        self
    }

    /// Adds a binding in place.
    pub fn insert(&mut self, name: impl Into<String>, value: Value) {
        self.bindings.push((name.into(), value));
    }

    /// Looks up a name (later bindings shadow earlier ones).
    pub fn get(&self, name: &str) -> Option<&Value> {
        self.bindings
            .iter()
            .rev()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v)
    }

    /// Removes the most recent binding (used by the evaluator's scoping).
    pub fn pop(&mut self) {
        self.bindings.pop();
    }

    /// Number of bindings.
    pub fn len(&self) -> usize {
        self.bindings.len()
    }

    /// True if there are no bindings.
    pub fn is_empty(&self) -> bool {
        self.bindings.is_empty()
    }

    /// Iterates over all bindings, oldest first.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &Value)> {
        self.bindings.iter().map(|(n, v)| (n.as_str(), v))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dsl::*;

    #[test]
    fn define_and_lookup() {
        let p = Program::srl()
            .define("first", ["t"], sel(var("t"), 1))
            .define("second", ["t"], sel(var("t"), 2));
        assert!(p.lookup("first").is_some());
        assert!(p.lookup("third").is_none());
        assert_eq!(p.def_names(), vec!["first", "second"]);
        assert!(p.validate().is_ok());
    }

    #[test]
    fn duplicate_definitions_rejected() {
        let p = Program::srl()
            .define("f", ["x"], var("x"))
            .define("f", ["y"], var("y"));
        assert_eq!(
            p.validate(),
            Err(CheckError::DuplicateDefinition("f".into()))
        );
    }

    #[test]
    fn recursion_rejected() {
        let p = Program::srl().define("f", ["x"], call("f", [var("x")]));
        assert_eq!(
            p.validate(),
            Err(CheckError::RecursiveDefinition("f".into()))
        );
    }

    #[test]
    fn forward_reference_rejected() {
        let p = Program::srl()
            .define("f", ["x"], call("g", [var("x")]))
            .define("g", ["x"], var("x"));
        assert!(matches!(
            p.validate(),
            Err(CheckError::RecursiveDefinition(_)) | Err(CheckError::UnknownFunction(_))
        ));
    }

    #[test]
    fn unknown_call_rejected() {
        let p = Program::srl().define("f", ["x"], call("nope", [var("x")]));
        assert_eq!(
            p.validate(),
            Err(CheckError::UnknownFunction("nope".into()))
        );
    }

    #[test]
    fn free_variable_outside_params_rejected() {
        let p = Program::srl().define("f", ["x"], var("y"));
        assert!(matches!(p.validate(), Err(CheckError::UnboundVariable(_))));
    }

    #[test]
    fn lambda_parameters_are_not_free() {
        let p = Program::srl().define(
            "elems",
            ["s"],
            set_reduce(
                var("s"),
                lam("x", "e", var("x")),
                lam("v", "acc", insert(var("v"), var("acc"))),
                empty_set(),
                empty_set(),
            ),
        );
        assert!(p.validate().is_ok());
    }

    #[test]
    fn call_arity_checked() {
        let p = Program::srl().define("pair", ["a", "b"], tuple([var("a"), var("b")]));
        assert!(p.check_call_arity("pair", 2).is_ok());
        assert!(matches!(
            p.check_call_arity("pair", 1),
            Err(CheckError::ArityMismatch { .. })
        ));
        assert!(matches!(
            p.check_call_arity("nope", 0),
            Err(CheckError::UnknownFunction(_))
        ));
    }

    #[test]
    fn extend_with_skips_existing_names() {
        let base = Program::srl().define("f", ["x"], var("x"));
        let other =
            Program::srl()
                .define("f", ["x"], sel(var("x"), 1))
                .define("g", ["x"], var("x"));
        let merged = base.extend_with(&other);
        assert_eq!(merged.def_names(), vec!["f", "g"]);
        // The original `f` is kept, not overwritten.
        assert_eq!(merged.lookup("f").unwrap().body, var("x"));
    }

    #[test]
    fn env_shadowing_and_iteration() {
        let mut env = Env::new()
            .bind("S", Value::empty_set())
            .bind("x", Value::atom(1));
        assert_eq!(env.get("x"), Some(&Value::atom(1)));
        env.insert("x", Value::atom(2));
        assert_eq!(env.get("x"), Some(&Value::atom(2)));
        env.pop();
        assert_eq!(env.get("x"), Some(&Value::atom(1)));
        assert_eq!(env.len(), 2);
        assert!(!env.is_empty());
        assert_eq!(env.iter().count(), 2);
        assert_eq!(env.get("missing"), None);
    }

    #[test]
    fn node_count_sums_defs() {
        let p = Program::srl().define("f", ["x"], var("x")).define(
            "g",
            ["x"],
            tuple([var("x"), var("x")]),
        );
        assert_eq!(p.node_count(), 1 + 3);
    }
}
