//! The deliberately-exponential programs of the paper.
//!
//! * Example 3.12: with set-height 2, `powerset(S)` builds the power set of
//!   `S` — a set of size 2^|S| — showing why the set-height ≤ 1 restriction
//!   is crucial for Theorem 3.10.
//! * The remark after Theorem 3.10: in LRL (lists instead of sets),
//!   `F((1, 2, …, n)) = (1, 1, …, 1)` with 2ⁿ ones is expressible because
//!   lists keep duplicates, so ℒ(LRL) ⊄ FP.
//!
//! Both programs are exercised by the E2/E6 experiments under small
//! [`srl_core::limits::EvalLimits`] budgets to show the blow-up hitting the
//! resource wall exactly where the paper predicts.

use srl_core::ast::Lambda;
use srl_core::dialect::Dialect;
use srl_core::dsl::*;
use srl_core::program::Program;

/// Names of the definitions produced by the builders in this module.
pub mod names {
    /// `finsert(pair, T)` — Example 3.12's `finsert`.
    pub const FINSERT: &str = "finsert";
    /// `sift(x, T)` — Example 3.12's `sift`.
    pub const SIFT: &str = "sift";
    /// `powerset(S)` — Example 3.12's `powerset`.
    pub const POWERSET: &str = "powerset";
    /// `append(A, B)` — list append, used by the doubling function.
    pub const APPEND: &str = "append";
    /// `double_per_element(L)` — the 2ⁿ-ones function.
    pub const DOUBLING: &str = "double_per_element";
}

/// Example 3.12 verbatim: `powerset`, `sift`, `finsert` in unrestricted SRL
/// (set-height 2).
pub fn powerset_program() -> Program {
    let program = Program::new(Dialect::unrestricted());

    // finsert(p, T): p is a pair [subset, element]; add both the subset and
    // the subset with the element inserted.
    let program = program.define(
        names::FINSERT,
        ["p", "T"],
        insert(
            sel(var("p"), 1),
            insert(insert(sel(var("p"), 2), sel(var("p"), 1)), var("T")),
        ),
    );

    // sift(x, T): pair every existing subset with x and fold finsert.
    let program = program.define(
        names::SIFT,
        ["x", "T"],
        set_reduce(
            var("T"),
            lam("y", "e", tuple([var("y"), var("e")])),
            lam(
                "pair",
                "acc",
                call(names::FINSERT, [var("pair"), var("acc")]),
            ),
            empty_set(),
            var("x"),
        ),
    );

    // powerset(S) = set-reduce(S, identity, sift, {{}}).
    program.define(
        names::POWERSET,
        ["S"],
        set_reduce(
            var("S"),
            Lambda::identity(),
            lam("x", "T", call(names::SIFT, [var("x"), var("T")])),
            insert(empty_set(), empty_set()),
            empty_set(),
        ),
    )
}

/// The LRL blow-up: `double_per_element(L)` returns a list of 2^|L| copies of
/// the atom `1` by appending the accumulator to itself once per list element.
pub fn lrl_doubling_program() -> Program {
    let program = Program::new(Dialect::lrl());

    // append(A, B): prepend A's elements onto B (order within A reverses,
    // which is irrelevant here — every element is the same atom).
    let program = program.define(
        names::APPEND,
        ["A", "B"],
        list_reduce(
            var("A"),
            Lambda::identity(),
            lam("x", "acc", cons(var("x"), var("acc"))),
            var("B"),
            empty_set(),
        ),
    );

    // double_per_element(L): start from <1> and double once per element.
    program.define(
        names::DOUBLING,
        ["L"],
        list_reduce(
            var("L"),
            Lambda::identity(),
            lam("x", "acc", call(names::APPEND, [var("acc"), var("acc")])),
            cons(atom(1), empty_list()),
            empty_set(),
        ),
    )
}

#[cfg(test)]
mod tests {
    use super::names::*;
    use super::*;
    use srl_core::error::EvalError;
    use srl_core::eval::run_program;
    use srl_core::limits::EvalLimits;
    use srl_core::typecheck::check_expr;
    use srl_core::value::Value;

    fn atoms(items: impl IntoIterator<Item = u64>) -> Value {
        Value::set(items.into_iter().map(Value::atom))
    }

    #[test]
    fn programs_validate() {
        assert!(powerset_program().validate().is_ok());
        assert!(lrl_doubling_program().validate().is_ok());
    }

    #[test]
    fn powerset_of_small_sets() {
        let program = powerset_program();
        // powerset({1, 2}) = {{}, {1}, {2}, {1, 2}} (the paper's example).
        let (v, _) =
            run_program(&program, POWERSET, &[atoms([1, 2])], EvalLimits::default()).unwrap();
        let expected = Value::set([Value::empty_set(), atoms([1]), atoms([2]), atoms([1, 2])]);
        assert_eq!(v, expected);
        // Size 2^n for a few n.
        for n in 0..6u64 {
            let (v, _) =
                run_program(&program, POWERSET, &[atoms(0..n)], EvalLimits::default()).unwrap();
            assert_eq!(v.len(), Some(1 << n), "n = {n}");
        }
    }

    #[test]
    fn powerset_value_has_set_height_two() {
        let program = powerset_program();
        let (v, _) = run_program(
            &program,
            POWERSET,
            &[atoms([1, 2, 3])],
            EvalLimits::default(),
        )
        .unwrap();
        assert_eq!(v.set_height(), 2);
    }

    #[test]
    fn powerset_is_rejected_by_the_srl_dialect() {
        // The same expression cannot be checked in the set-height ≤ 1
        // dialect: inserting a set into a set violates the bound.
        let srl = srl_core::program::Program::srl();
        let expr = insert(empty_set(), empty_set());
        let err = check_expr(&srl, &expr, &[]);
        assert!(err.is_err());
    }

    #[test]
    fn powerset_hits_resource_limits_where_predicted() {
        // With a small budget the exponential blow-up is caught by the
        // evaluator rather than exhausting memory.
        let program = powerset_program();
        let result = run_program(&program, POWERSET, &[atoms(0..18)], EvalLimits::small());
        assert!(matches!(
            result,
            Err(EvalError::SizeLimitExceeded { .. }) | Err(EvalError::StepLimitExceeded { .. })
        ));
    }

    #[test]
    fn doubling_produces_two_to_the_n_ones() {
        let program = lrl_doubling_program();
        for n in 0..7u64 {
            let input = Value::list((0..n).map(Value::atom));
            let (v, _) = run_program(&program, DOUBLING, &[input], EvalLimits::default()).unwrap();
            let list = v.as_list().unwrap();
            assert_eq!(list.len(), 1 << n, "n = {n}");
            assert!(list.iter().all(|x| *x == Value::atom(1)));
        }
    }

    #[test]
    fn doubling_hits_resource_limits_where_predicted() {
        let program = lrl_doubling_program();
        let input = Value::list((0..30).map(Value::atom));
        let result = run_program(&program, DOUBLING, &[input], EvalLimits::small());
        assert!(matches!(
            result,
            Err(EvalError::SizeLimitExceeded { .. }) | Err(EvalError::StepLimitExceeded { .. })
        ));
    }

    #[test]
    fn append_concatenates_lengths() {
        let program = lrl_doubling_program();
        let a = Value::list([Value::atom(1), Value::atom(2)]);
        let b = Value::list([Value::atom(3)]);
        let (v, _) = run_program(&program, APPEND, &[a, b], EvalLimits::default()).unwrap();
        assert_eq!(v.as_list().unwrap().len(), 3);
    }
}
