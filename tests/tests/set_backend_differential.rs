//! Differential tests: the sorted-vec set backend (`srl_core::SetRepr`)
//! against a `BTreeSet<Value>` oracle — the representation it replaced.
//!
//! The backend swap promised that nothing observable changes: membership,
//! insert deduplication (first-wins), the choose/rest ascending order, the
//! `set-reduce` fold order and every `EvalStats` counter. These tests drive
//! both structures through the same randomized operation sequences
//! (deterministic SplitMix64 streams, like `property_tests.rs`) and demand
//! exact agreement, including on partially-drained sets whose slice window
//! has advanced.
//!
//! The last test is the golden for the `with_compiled` fingerprint check:
//! a mispaired program/compiled pair must fail with
//! `EvalError::CompiledProgramMismatch` in every build profile.

use std::collections::BTreeSet;
use std::sync::Arc;

use srl_core::dsl::*;
use srl_core::eval::{eval_expr_with_stats, Evaluator};
use srl_core::{Env, EvalError, EvalLimits, Lambda, SetRepr, Value};

const CASES: u64 = 64;

/// Deterministic case stream (SplitMix64, as in `property_tests.rs`).
struct Gen {
    state: u64,
}

impl Gen {
    fn new(seed: u64) -> Self {
        Gen {
            state: seed ^ 0x9e37_79b9_7f4a_7c15,
        }
    }

    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next_u64() % n.max(1)
    }

    /// A value of mixed shape: atoms (sometimes named, to exercise first-wins
    /// deduplication of equal-but-distinguishable values), bools, nats,
    /// pairs, and small sets of atoms (nesting exercises the recursive
    /// `Value` order).
    fn value(&mut self) -> Value {
        match self.below(6) {
            0 => Value::bool(self.below(2) == 0),
            1 => Value::atom(self.below(12)),
            2 => Value::named_atom(self.below(12), "n"),
            3 => Value::nat(self.below(40)),
            4 => Value::tuple([Value::atom(self.below(6)), Value::atom(self.below(6))]),
            _ => Value::set((0..self.below(4)).map(|_| Value::atom(self.below(8)))),
        }
    }
}

fn elements(repr: &SetRepr) -> Vec<Value> {
    repr.iter().collect()
}

fn oracle_elements(oracle: &BTreeSet<Value>) -> Vec<Value> {
    oracle.iter().cloned().collect()
}

#[test]
fn insert_and_membership_agree_with_btreeset() {
    let mut g = Gen::new(11);
    for case in 0..CASES {
        let mut repr = SetRepr::new();
        let mut oracle: BTreeSet<Value> = BTreeSet::new();
        for step in 0..1 + g.below(30) {
            let v = g.value();
            let novel_repr = repr.insert(v.clone());
            let novel_oracle = oracle.insert(v.clone());
            assert_eq!(
                novel_repr, novel_oracle,
                "case {case} step {step}: insert novelty differs for {v}"
            );
            assert_eq!(repr.len(), oracle.len(), "case {case} step {step}");
            let probe = g.value();
            assert_eq!(
                repr.contains(&probe),
                oracle.contains(&probe),
                "case {case} step {step}: membership differs for {probe}"
            );
        }
        assert_eq!(
            elements(&repr),
            oracle_elements(&oracle),
            "case {case}: iteration order differs"
        );
        assert_eq!(repr.first(), oracle.iter().next().cloned(), "case {case}");
    }
}

#[test]
fn duplicate_inserts_keep_the_first_element_like_btreeset() {
    // `Value::atom(k)` and `Value::named_atom(k, …)` compare equal but
    // display differently, so which one the set keeps is observable.
    let mut g = Gen::new(12);
    for case in 0..CASES {
        let mut repr = SetRepr::new();
        let mut oracle: BTreeSet<Value> = BTreeSet::new();
        for _ in 0..12 {
            let k = g.below(4);
            let v = if g.below(2) == 0 {
                Value::atom(k)
            } else {
                Value::named_atom(k, format!("a{k}"))
            };
            repr.insert(v.clone());
            oracle.insert(v);
        }
        let got: Vec<String> = elements(&repr).iter().map(|v| format!("{v:?}")).collect();
        let want: Vec<String> = oracle_elements(&oracle)
            .iter()
            .map(|v| format!("{v:?}"))
            .collect();
        assert_eq!(got, want, "case {case}: kept different representatives");
    }
}

#[test]
fn choose_rest_drain_agrees_with_btreeset_and_cow_is_invisible() {
    let mut g = Gen::new(13);
    for case in 0..CASES {
        let values: Vec<Value> = (0..g.below(20)).map(|_| g.value()).collect();
        let mut repr: Arc<SetRepr> = Arc::new(values.iter().cloned().collect());
        let mut oracle: BTreeSet<Value> = values.iter().cloned().collect();
        let mut held: Vec<(Arc<SetRepr>, Vec<Value>)> = Vec::new();
        while !oracle.is_empty() {
            // Occasionally take a shared handle mid-drain: the later pops
            // must copy-on-write, leaving the handle's view frozen.
            if g.below(3) == 0 {
                held.push((Arc::clone(&repr), elements(&repr)));
            }
            let popped_repr = Arc::make_mut(&mut repr).pop_first();
            let min = oracle.iter().next().cloned().expect("non-empty");
            oracle.remove(&min);
            assert_eq!(popped_repr, Some(min), "case {case}: pop order differs");
            assert_eq!(elements(&repr), oracle_elements(&oracle), "case {case}");
        }
        assert_eq!(Arc::make_mut(&mut repr).pop_first(), None, "case {case}");
        for (handle, snapshot) in held {
            assert_eq!(
                elements(&handle),
                snapshot,
                "case {case}: a shared handle observed a later mutation"
            );
        }
    }
}

#[test]
fn set_reduce_fold_order_matches_btreeset_ascending_order() {
    // Collect the elements through the reduce accumulator into a list; the
    // accumulator meets elements in ascending order, so prepending yields
    // the descending list — exactly the oracle's order reversed.
    let collect = set_reduce(
        var("S"),
        Lambda::identity(),
        lam("x", "acc", cons(var("x"), var("acc"))),
        empty_list(),
        empty_set(),
    );
    let mut g = Gen::new(14);
    for case in 0..CASES {
        let values: Vec<Value> = (0..g.below(16)).map(|_| g.value()).collect();
        let oracle: BTreeSet<Value> = values.iter().cloned().collect();
        let env = Env::new().bind("S", Value::set(values));
        let (folded, _) =
            eval_expr_with_stats(&collect, &env, EvalLimits::default()).expect("reduce evaluates");
        let want: Vec<Value> = oracle.iter().rev().cloned().collect();
        assert_eq!(
            folded,
            Value::list(want),
            "case {case}: fold order differs from the BTreeSet order"
        );
    }
}

#[test]
fn stats_are_identical_across_representation_states() {
    // The same logical set can sit in different physical states: freshly
    // collected, rebuilt by inserts, or a drained slice window (the result
    // of rest()). The cost model must not see the difference.
    let rebuild = set_reduce(
        var("S"),
        Lambda::identity(),
        lam("x", "acc", insert(var("x"), var("acc"))),
        empty_set(),
        empty_set(),
    );
    let mut g = Gen::new(15);
    for case in 0..CASES {
        let values: Vec<Value> = (0..1 + g.below(12)).map(|_| g.value()).collect();
        let literal = Value::set(values.clone());

        let mut inserted = SetRepr::new();
        for v in &values {
            inserted.insert(v.clone());
        }

        // Drain one element through rest() and put it back with insert():
        // same contents, but the backing window has advanced.
        let (windowed, _) = eval_expr_with_stats(
            &insert(choose(var("S")), rest(var("S"))),
            &Env::new().bind("S", literal.clone()),
            EvalLimits::default(),
        )
        .expect("choose/rest/insert evaluates");

        let mut outcomes = Vec::new();
        for (state, input) in [
            ("literal", literal.clone()),
            ("inserted", Value::Set(Arc::new(inserted))),
            ("windowed", windowed),
        ] {
            assert_eq!(
                input, literal,
                "case {case}: {state} state differs as a value"
            );
            let env = Env::new().bind("S", input);
            let (value, stats) = eval_expr_with_stats(&rebuild, &env, EvalLimits::default())
                .expect("rebuild evaluates");
            outcomes.push((state, value, stats));
        }
        let (_, first_value, first_stats) = &outcomes[0];
        for (state, value, stats) in &outcomes {
            assert_eq!(value, first_value, "case {case}: result differs in {state}");
            assert_eq!(stats, first_stats, "case {case}: stats differ in {state}");
        }
    }
}

/// Golden: a mispaired program/compiled pair is a real error in every build
/// profile, with the fingerprints of both sides in the message.
#[test]
fn mispaired_compiled_program_is_rejected_with_fingerprints() {
    use srl_core::{program_fingerprint, Program};

    let compiled_for = Program::srl().define("f", ["x"], var("x"));
    let other = Program::srl().define("g", ["x"], sel(var("x"), 1));
    let compiled = Arc::new(compiled_for.compile());

    // The matching pair is accepted…
    assert!(
        Evaluator::with_compiled(&compiled_for, Arc::clone(&compiled), EvalLimits::default())
            .is_ok()
    );

    // …the mispaired one is rejected with both fingerprints.
    let err = Evaluator::with_compiled(&other, Arc::clone(&compiled), EvalLimits::default())
        .err()
        .expect("mispaired with_compiled must fail");
    let expected = program_fingerprint(&other);
    let found = compiled.fingerprint();
    assert_ne!(expected, found);
    assert_eq!(err, EvalError::CompiledProgramMismatch { expected, found });
    assert_eq!(
        err.to_string(),
        format!(
            "compiled program is not the compiled form of this program \
             (program fingerprint {expected:#018x}, compiled fingerprint {found:#018x})"
        )
    );

    // A structurally identical rebuild of the program fingerprints equal —
    // the check keys on structure, not identity.
    let rebuilt = Program::srl().define("f", ["x"], var("x"));
    assert!(Evaluator::with_compiled(&rebuilt, compiled, EvalLimits::default()).is_ok());
}
