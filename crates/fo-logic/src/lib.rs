//! # fo-logic — the descriptive-complexity substrate
//!
//! Section 3 of the paper characterises the expressiveness of SRL "following
//! the conventions of descriptive complexity": inputs are finite logical
//! structures, properties are classes of structures, and the working tools
//! are first-order logic with a built-in order, the BIT predicate, counting
//! quantifiers, the fixpoint operators LFP / TC / DTC, and first-order
//! interpretations between vocabularies.
//!
//! This crate implements that toolkit from scratch:
//!
//! * [`structure`] — vocabularies, finite structures `STRUCT[τ]`, and the
//!   bridge to SRL evaluation environments;
//! * [`formula`] — formulas and a naive (obviously-correct) evaluator for
//!   FO(≤, BIT) + count + LFP + TC + DTC, plus the library formulas the
//!   experiments need (the APATH fixpoint of Section 3, TC/DTC reachability,
//!   EVEN-with-order);
//! * [`interpretation`] — k-ary first-order interpretations (Definition 3.1)
//!   and a library of reductions used to test Proposition 3.3 (closure of
//!   ℒ(SRL) under ≤_fo).
//!
//! Everything here is a *baseline*: the SRL programs built in `srl-stdlib`
//! are checked against these evaluators by the integration tests and the
//! benchmark harness.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod formula;
pub mod interpretation;
pub mod structure;

pub use formula::{eval, eval_sentence, Assignment, Formula, Term};
pub use interpretation::Interpretation;
pub use structure::{Structure, Vocabulary};
