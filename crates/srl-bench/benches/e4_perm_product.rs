//! E4 — Lemma 4.10 / Theorem 4.13: iterated permutation multiplication in
//! BASRL vs. the native product.

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use srl_core::eval::Evaluator;
use srl_core::limits::EvalLimits;
use srl_core::value::Value;
use srl_stdlib::perm::{names, padded_domain, perm_program};
use workloads::permutation::IteratedProductInstance;

fn bench(c: &mut Criterion) {
    // Compiled once; the measured region is evaluation alone.
    let program = perm_program();
    let compiled = Arc::new(program.compile());
    let mut group = c.benchmark_group("e4_perm_product");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(200));
    group.measurement_time(std::time::Duration::from_millis(600));
    for n in [4usize, 6, 8, 10] {
        let instance = IteratedProductInstance::random(n, n, 11 + n as u64);
        let args = [
            padded_domain(&instance),
            instance.to_srl_value(),
            Value::atom(0),
        ];
        let mut ev =
            Evaluator::with_compiled(&program, Arc::clone(&compiled), EvalLimits::benchmark())
                .expect("compiled from this program");
        group.bench_with_input(BenchmarkId::new("srl_ip", n), &n, |b, _| {
            b.iter(|| {
                ev.reset_stats();
                ev.call(names::IP, &args).unwrap()
            })
        });
        group.bench_with_input(BenchmarkId::new("native_product", n), &n, |b, _| {
            b.iter(|| instance.product())
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
