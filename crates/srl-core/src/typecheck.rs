//! Static checking: types (the typing rules of Section 2) and dialect
//! restrictions (the syntactic conditions of Sections 3–5).
//!
//! The paper's grammar is typed; rule 9 in particular fixes the types of the
//! `app` and `acc` lambdas of a `set-reduce`:
//!
//! ```text
//! set-reduce(s, app, acc, base, extra) : T'
//!   where s : set(T), base : T', extra : extype,
//!         app : (T, extype) → A,  acc : (A, T') → T'
//! ```
//!
//! `emptyset : set(alpha)` is polymorphic; a small unification engine
//! resolves the `alpha`s. After inference, the checker enforces the active
//! [`Dialect`]: operator availability, the set-height bound (Definition 2.2 /
//! Theorem 3.10), and — for BASRL — that every accumulator returns a value of
//! set-height 0 (Section 4).

use std::collections::BTreeMap;

use crate::ast::{Expr, Lambda};
use crate::dialect::Dialect;
use crate::error::CheckError;
use crate::lower::CompiledProgram;
use crate::program::Program;
use crate::types::Type;
use crate::value::Value;

/// The signature of a checked definition.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FunSig {
    /// Parameter types, in order.
    pub params: Vec<Type>,
    /// Return type.
    pub ret: Type,
}

/// The result of checking a whole program.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct CheckedProgram {
    /// Signature of every definition, keyed by name.
    pub signatures: BTreeMap<String, FunSig>,
}

/// Type checker state (one per `check_program` / `check_expr` call).
pub struct TypeChecker<'p> {
    program: &'p Program,
    subst: Vec<Option<Type>>,
    signatures: BTreeMap<String, FunSig>,
}

impl<'p> TypeChecker<'p> {
    /// Creates a checker for `program`.
    pub fn new(program: &'p Program) -> Self {
        TypeChecker {
            program,
            subst: Vec::new(),
            signatures: BTreeMap::new(),
        }
    }

    /// Checks every definition of the program, in order. All parameters must
    /// carry declared types. Returns the inferred signatures.
    pub fn check_program(mut self) -> Result<CheckedProgram, CheckError> {
        self.program.validate()?;
        for def in &self.program.defs {
            let mut env: Vec<(String, Type)> = Vec::new();
            let mut param_types = Vec::new();
            for p in &def.params {
                let ty = p.ty.clone().ok_or_else(|| CheckError::TypeMismatch {
                    expected: Type::Var(0),
                    found: Type::Var(0),
                    context: format!(
                        "definition `{}`: parameter `{}` needs a declared type for checking",
                        def.name, p.name
                    ),
                })?;
                self.check_type_allowed(&ty, &format!("parameter `{}` of `{}`", p.name, def.name))?;
                env.push((p.name.clone(), ty.clone()));
                param_types.push(ty);
            }
            let ret = self.infer(&def.body, &mut env)?;
            let ret = self.resolve(&ret);
            self.check_type_allowed(&ret, &format!("return type of `{}`", def.name))?;
            self.signatures.insert(
                def.name.clone(),
                FunSig {
                    params: param_types,
                    ret,
                },
            );
        }
        Ok(CheckedProgram {
            signatures: self.signatures,
        })
    }

    /// Checks a stand-alone expression whose free variables have the given
    /// types (the query's input relations), returning its resolved type.
    /// Definitions of the program must already be typed if they are called.
    pub fn check_expr(
        mut self,
        expr: &Expr,
        inputs: &[(String, Type)],
    ) -> Result<Type, CheckError> {
        // Make the signatures of typed definitions available for calls.
        let defs = self.program.defs.clone();
        for def in &defs {
            if def.params.iter().all(|p| p.ty.is_some()) {
                let mut env: Vec<(String, Type)> = def
                    .params
                    .iter()
                    .map(|p| (p.name.clone(), p.ty.clone().expect("checked above")))
                    .collect();
                let param_types: Vec<Type> = env.iter().map(|(_, t)| t.clone()).collect();
                let ret = self.infer(&def.body, &mut env)?;
                let ret = self.resolve(&ret);
                self.signatures.insert(
                    def.name.clone(),
                    FunSig {
                        params: param_types,
                        ret,
                    },
                );
            }
        }
        let mut env: Vec<(String, Type)> = inputs.to_vec();
        for (name, ty) in inputs {
            self.check_type_allowed(ty, &format!("input `{name}`"))?;
        }
        let t = self.infer(expr, &mut env)?;
        let t = self.resolve(&t);
        self.check_type_allowed(&t, "result")?;
        Ok(t)
    }

    fn fresh(&mut self) -> Type {
        let id = self.subst.len() as u32;
        self.subst.push(None);
        Type::Var(id)
    }

    fn resolve(&self, t: &Type) -> Type {
        match t {
            Type::Var(i) => match self.subst.get(*i as usize).and_then(|s| s.clone()) {
                Some(bound) => self.resolve(&bound),
                None => Type::Var(*i),
            },
            Type::Tuple(ts) => Type::Tuple(ts.iter().map(|t| self.resolve(t)).collect()),
            Type::Set(t) => Type::set_of(self.resolve(t)),
            Type::List(t) => Type::list_of(self.resolve(t)),
            other => other.clone(),
        }
    }

    fn occurs(&self, var: u32, t: &Type) -> bool {
        match self.resolve(t) {
            Type::Var(i) => i == var,
            Type::Tuple(ts) => ts.iter().any(|t| self.occurs(var, t)),
            Type::Set(t) | Type::List(t) => self.occurs(var, &t),
            _ => false,
        }
    }

    fn unify(&mut self, a: &Type, b: &Type, context: &str) -> Result<(), CheckError> {
        let ra = self.resolve(a);
        let rb = self.resolve(b);
        match (&ra, &rb) {
            (Type::Var(i), Type::Var(j)) if i == j => Ok(()),
            (Type::Var(i), other) | (other, Type::Var(i)) => {
                if self.occurs(*i, other) {
                    return Err(CheckError::InfiniteType);
                }
                self.subst[*i as usize] = Some(other.clone());
                Ok(())
            }
            (Type::Bool, Type::Bool) | (Type::Atom, Type::Atom) | (Type::Nat, Type::Nat) => Ok(()),
            (Type::Tuple(xs), Type::Tuple(ys)) if xs.len() == ys.len() => {
                for (x, y) in xs.iter().zip(ys) {
                    self.unify(x, y, context)?;
                }
                Ok(())
            }
            (Type::Set(x), Type::Set(y)) | (Type::List(x), Type::List(y)) => {
                self.unify(x, y, context)
            }
            _ => Err(CheckError::TypeMismatch {
                expected: ra,
                found: rb,
                context: context.to_string(),
            }),
        }
    }

    fn dialect(&self) -> &Dialect {
        &self.program.dialect
    }

    fn check_operator_allowed(&self, expr: &Expr) -> Result<(), CheckError> {
        let d = self.dialect();
        let violation = |op: &str| CheckError::DialectViolation {
            operator: op.to_string(),
            dialect: d.name.to_string(),
        };
        match expr {
            Expr::New(_) if !d.allow_new => Err(violation("new")),
            Expr::NatConst(_) | Expr::Succ(_) if !d.allow_nat => Err(violation("nat")),
            Expr::NatAdd(..) if !d.allow_nat_add => Err(violation("nat addition")),
            Expr::NatMul(..) if !d.allow_nat_mul => Err(violation("nat multiplication")),
            Expr::EmptyList
            | Expr::Cons(..)
            | Expr::Head(_)
            | Expr::Tail(_)
            | Expr::ListReduce { .. }
                if !d.allow_lists =>
            {
                Err(violation("lists"))
            }
            _ => Ok(()),
        }
    }

    fn check_type_allowed(&self, t: &Type, context: &str) -> Result<(), CheckError> {
        if let Some(max) = self.dialect().max_set_height {
            if t.set_height() > max {
                return Err(CheckError::TypeMismatch {
                    expected: Type::set_of(Type::Var(0)),
                    found: t.clone(),
                    context: format!(
                        "{context}: set-height {} exceeds the dialect bound of {max}",
                        t.set_height()
                    ),
                });
            }
        }
        Ok(())
    }

    fn infer_lambda(
        &mut self,
        lambda: &Lambda,
        x_ty: Type,
        y_ty: Type,
        env: &mut Vec<(String, Type)>,
    ) -> Result<Type, CheckError> {
        env.push((lambda.x.clone(), x_ty));
        env.push((lambda.y.clone(), y_ty));
        let result = self.infer(&lambda.body, env);
        env.pop();
        env.pop();
        result
    }

    fn infer(&mut self, expr: &Expr, env: &mut Vec<(String, Type)>) -> Result<Type, CheckError> {
        self.check_operator_allowed(expr)?;
        match expr {
            Expr::Bool(_) => Ok(Type::Bool),
            Expr::Const(v) => Ok(self.type_of_value(v)),
            Expr::Var(name) => env
                .iter()
                .rev()
                .find(|(n, _)| n == name)
                .map(|(_, t)| t.clone())
                .ok_or_else(|| CheckError::UnboundVariable(name.clone())),
            Expr::If(c, t, e) => {
                let ct = self.infer(c, env)?;
                self.unify(&ct, &Type::Bool, "if condition")?;
                let tt = self.infer(t, env)?;
                let et = self.infer(e, env)?;
                self.unify(&tt, &et, "if branches")?;
                Ok(tt)
            }
            Expr::Tuple(items) => {
                let mut ts = Vec::with_capacity(items.len());
                for item in items {
                    ts.push(self.infer(item, env)?);
                }
                Ok(Type::Tuple(ts))
            }
            Expr::Sel(index, e) => {
                let t = self.infer(e, env)?;
                match self.resolve(&t) {
                    Type::Tuple(ts) => {
                        if *index == 0 || *index > ts.len() {
                            Err(CheckError::BadSelector {
                                index: *index,
                                on: Type::Tuple(ts),
                            })
                        } else {
                            Ok(ts[*index - 1].clone())
                        }
                    }
                    other => Err(CheckError::BadSelector {
                        index: *index,
                        on: other,
                    }),
                }
            }
            Expr::Eq(a, b) => {
                let ta = self.infer(a, env)?;
                let tb = self.infer(b, env)?;
                self.unify(&ta, &tb, "equality operands")?;
                let resolved = self.resolve(&ta);
                if resolved.is_ground() && !resolved.has_primitive_equality() {
                    return Err(CheckError::EqualityOnNonEqType(resolved));
                }
                Ok(Type::Bool)
            }
            Expr::Leq(a, b) => {
                let ta = self.infer(a, env)?;
                let tb = self.infer(b, env)?;
                self.unify(&ta, &tb, "≤ operands")?;
                let resolved = self.resolve(&ta);
                if resolved.is_ground() && !resolved.has_primitive_order() {
                    return Err(CheckError::OrderOnNonOrdType(resolved));
                }
                Ok(Type::Bool)
            }
            Expr::EmptySet => {
                let elem = self.fresh();
                Ok(Type::set_of(elem))
            }
            Expr::Insert(e, s) => {
                let te = self.infer(e, env)?;
                let ts = self.infer(s, env)?;
                self.unify(&ts, &Type::set_of(te.clone()), "insert")?;
                let resolved = self.resolve(&ts);
                self.check_type_allowed(&resolved, "insert result")?;
                Ok(resolved)
            }
            Expr::Choose(s) => {
                let ts = self.infer(s, env)?;
                let elem = self.fresh();
                self.unify(&ts, &Type::set_of(elem.clone()), "choose")?;
                Ok(self.resolve(&elem))
            }
            Expr::Rest(s) => {
                let ts = self.infer(s, env)?;
                let elem = self.fresh();
                self.unify(&ts, &Type::set_of(elem), "rest")?;
                Ok(self.resolve(&ts))
            }
            Expr::SetReduce {
                set,
                app,
                acc,
                base,
                extra,
            } => {
                let set_ty = self.infer(set, env)?;
                let elem_ty = self.fresh();
                self.unify(&set_ty, &Type::set_of(elem_ty.clone()), "set-reduce set")?;
                let base_ty = self.infer(base, env)?;
                let extra_ty = self.infer(extra, env)?;
                let app_ty = self.infer_lambda(app, elem_ty, extra_ty, env)?;
                let acc_ty = self.infer_lambda(acc, app_ty, base_ty.clone(), env)?;
                self.unify(&acc_ty, &base_ty, "set-reduce accumulator")?;
                let result = self.resolve(&base_ty);
                self.check_type_allowed(&result, "set-reduce result")?;
                if self.dialect().bounded_accumulator
                    && result.is_ground()
                    && result.set_height() > 0
                {
                    return Err(CheckError::TypeMismatch {
                        expected: Type::tuple_of([Type::Atom]),
                        found: result,
                        context: "BASRL requires accumulators of set-height 0 (bounded tuples)"
                            .to_string(),
                    });
                }
                Ok(result)
            }
            Expr::ListReduce {
                list,
                app,
                acc,
                base,
                extra,
            } => {
                let list_ty = self.infer(list, env)?;
                let elem_ty = self.fresh();
                self.unify(
                    &list_ty,
                    &Type::list_of(elem_ty.clone()),
                    "list-reduce list",
                )?;
                let base_ty = self.infer(base, env)?;
                let extra_ty = self.infer(extra, env)?;
                let app_ty = self.infer_lambda(app, elem_ty, extra_ty, env)?;
                let acc_ty = self.infer_lambda(acc, app_ty, base_ty.clone(), env)?;
                self.unify(&acc_ty, &base_ty, "list-reduce accumulator")?;
                Ok(self.resolve(&base_ty))
            }
            Expr::Call(name, args) => {
                let sig = self
                    .signatures
                    .get(name)
                    .cloned()
                    .ok_or_else(|| CheckError::UnknownFunction(name.clone()))?;
                if sig.params.len() != args.len() {
                    return Err(CheckError::ArityMismatch {
                        name: name.clone(),
                        expected: sig.params.len(),
                        found: args.len(),
                    });
                }
                for (i, (arg, pty)) in args.iter().zip(&sig.params).enumerate() {
                    let at = self.infer(arg, env)?;
                    self.unify(&at, pty, &format!("argument {} of `{name}`", i + 1))?;
                }
                Ok(sig.ret)
            }
            Expr::Let { name, value, body } => {
                let vt = self.infer(value, env)?;
                env.push((name.clone(), vt));
                let bt = self.infer(body, env);
                env.pop();
                bt
            }
            Expr::New(s) => {
                let ts = self.infer(s, env)?;
                let elem = self.fresh();
                self.unify(&ts, &Type::set_of(elem), "new")?;
                Ok(Type::Atom)
            }
            Expr::NatConst(_) => Ok(Type::Nat),
            Expr::Succ(e) => {
                let t = self.infer(e, env)?;
                self.unify(&t, &Type::Nat, "succ")?;
                Ok(Type::Nat)
            }
            Expr::NatAdd(a, b) | Expr::NatMul(a, b) => {
                let ta = self.infer(a, env)?;
                let tb = self.infer(b, env)?;
                self.unify(&ta, &Type::Nat, "arithmetic")?;
                self.unify(&tb, &Type::Nat, "arithmetic")?;
                Ok(Type::Nat)
            }
            Expr::EmptyList => {
                let elem = self.fresh();
                Ok(Type::list_of(elem))
            }
            Expr::Cons(e, l) => {
                let te = self.infer(e, env)?;
                let tl = self.infer(l, env)?;
                self.unify(&tl, &Type::list_of(te), "cons")?;
                Ok(self.resolve(&tl))
            }
            Expr::Head(l) => {
                let tl = self.infer(l, env)?;
                let elem = self.fresh();
                self.unify(&tl, &Type::list_of(elem.clone()), "head")?;
                Ok(self.resolve(&elem))
            }
            Expr::Tail(l) => {
                let tl = self.infer(l, env)?;
                let elem = self.fresh();
                self.unify(&tl, &Type::list_of(elem), "tail")?;
                Ok(self.resolve(&tl))
            }
        }
    }

    fn type_of_value(&mut self, v: &Value) -> Type {
        match v {
            Value::Bool(_) => Type::Bool,
            Value::Atom(_) => Type::Atom,
            Value::Nat(_) => Type::Nat,
            Value::Tuple(items) => {
                Type::Tuple(items.iter().map(|i| self.type_of_value(i)).collect())
            }
            Value::Set(items) => match items.iter().next() {
                Some(first) => Type::set_of(self.type_of_value(&first)),
                None => Type::set_of(self.fresh()),
            },
            Value::List(items) => match items.first() {
                Some(first) => Type::list_of(self.type_of_value(first)),
                None => Type::list_of(self.fresh()),
            },
        }
    }
}

/// Convenience: type-checks a whole program.
pub fn check_program(program: &Program) -> Result<CheckedProgram, CheckError> {
    TypeChecker::new(program).check_program()
}

/// Type-checks a program and, on success, lowers it to its compiled form
/// (interned symbols, slot-indexed variables) in one step.
///
/// This is a thin compatibility wrapper over the staged
/// [`Pipeline`](crate::pipeline::Pipeline) (with
/// [`TypePolicy::Require`](crate::pipeline::TypePolicy)), which is the
/// intended entry point for new code: it additionally owns the evaluation
/// budget and backend choice, and hands out evaluators whose
/// program↔compiled pairing is correct by construction.
pub fn check_and_compile(
    program: &Program,
) -> Result<(CheckedProgram, CompiledProgram), CheckError> {
    use crate::pipeline::{Pipeline, TypePolicy};
    let checked = Pipeline::new()
        .with_type_policy(TypePolicy::Require)
        .check(program.clone())?;
    let (program, signatures) = checked.into_parts();
    let signatures = signatures.expect("TypePolicy::Require always runs the checker");
    Ok((signatures, program.compile()))
}

/// Convenience: type-checks a stand-alone expression against typed inputs.
pub fn check_expr(
    program: &Program,
    expr: &Expr,
    inputs: &[(String, Type)],
) -> Result<Type, CheckError> {
    TypeChecker::new(program).check_expr(expr, inputs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dsl::*;

    fn inputs(items: &[(&str, Type)]) -> Vec<(String, Type)> {
        items
            .iter()
            .map(|(n, t)| (n.to_string(), t.clone()))
            .collect()
    }

    #[test]
    fn literals_and_if() {
        let p = Program::srl();
        assert_eq!(check_expr(&p, &bool_(true), &[]), Ok(Type::Bool));
        assert_eq!(
            check_expr(&p, &if_(bool_(true), atom(1), atom(2)), &[]),
            Ok(Type::Atom)
        );
        assert!(matches!(
            check_expr(&p, &if_(atom(1), atom(1), atom(2)), &[]),
            Err(CheckError::TypeMismatch { .. })
        ));
        assert!(matches!(
            check_expr(&p, &if_(bool_(true), atom(1), bool_(false)), &[]),
            Err(CheckError::TypeMismatch { .. })
        ));
    }

    #[test]
    fn tuples_and_selectors() {
        let p = Program::srl();
        let t = tuple([atom(1), bool_(true)]);
        assert_eq!(
            check_expr(&p, &t, &[]),
            Ok(Type::tuple_of([Type::Atom, Type::Bool]))
        );
        assert_eq!(check_expr(&p, &sel(t.clone(), 2), &[]), Ok(Type::Bool));
        assert!(matches!(
            check_expr(&p, &sel(t.clone(), 3), &[]),
            Err(CheckError::BadSelector { index: 3, .. })
        ));
        assert!(matches!(
            check_expr(&p, &sel(atom(1), 1), &[]),
            Err(CheckError::BadSelector { .. })
        ));
    }

    #[test]
    fn equality_allows_eq_types_only() {
        let p = Program::srl();
        assert_eq!(check_expr(&p, &eq(atom(1), atom(2)), &[]), Ok(Type::Bool));
        assert!(matches!(
            check_expr(&p, &eq(atom(1), bool_(true)), &[]),
            Err(CheckError::TypeMismatch { .. })
        ));
        // Equality on sets must be rejected: the paper requires it to be
        // expressed via set-reduce.
        let e = eq(var("A"), var("B"));
        let ins = inputs(&[("A", Type::relation(1)), ("B", Type::relation(1))]);
        assert!(matches!(
            check_expr(&p, &e, &ins),
            Err(CheckError::EqualityOnNonEqType(_))
        ));
    }

    #[test]
    fn insert_and_emptyset_unify() {
        let p = Program::srl();
        let e = insert(atom(1), insert(atom(2), empty_set()));
        assert_eq!(check_expr(&p, &e, &[]), Ok(Type::set_of(Type::Atom)));
        // Inserting mixed types fails.
        let bad = insert(bool_(true), insert(atom(2), empty_set()));
        assert!(check_expr(&p, &bad, &[]).is_err());
    }

    #[test]
    fn choose_and_rest() {
        let p = Program::srl();
        let ins = inputs(&[("S", Type::set_of(Type::Atom))]);
        assert_eq!(check_expr(&p, &choose(var("S")), &ins), Ok(Type::Atom));
        assert_eq!(
            check_expr(&p, &rest(var("S")), &ins),
            Ok(Type::set_of(Type::Atom))
        );
    }

    #[test]
    fn set_reduce_typing_rule_9() {
        let p = Program::srl();
        // Rebuild a set: app = identity, acc = insert.
        let e = set_reduce(
            var("S"),
            Lambda::identity(),
            lam("x", "acc", insert(var("x"), var("acc"))),
            empty_set(),
            empty_set(),
        );
        let ins = inputs(&[("S", Type::set_of(Type::Atom))]);
        assert_eq!(check_expr(&p, &e, &ins), Ok(Type::set_of(Type::Atom)));

        // forall-style reduce returns bool.
        let all_eq = set_reduce(
            var("S"),
            lam("x", "e", eq(var("x"), var("e"))),
            lam("b", "acc", and(var("b"), var("acc"))),
            bool_(true),
            var("target"),
        );
        let ins = inputs(&[("S", Type::set_of(Type::Atom)), ("target", Type::Atom)]);
        assert_eq!(check_expr(&p, &all_eq, &ins), Ok(Type::Bool));
    }

    #[test]
    fn set_reduce_acc_must_match_base() {
        let p = Program::srl();
        // acc returns an atom but base is a boolean: ill-typed.
        let e = set_reduce(
            var("S"),
            Lambda::identity(),
            lam("x", "acc", var("x")),
            bool_(true),
            empty_set(),
        );
        let ins = inputs(&[("S", Type::set_of(Type::Atom))]);
        assert!(check_expr(&p, &e, &ins).is_err());
    }

    #[test]
    fn srl_rejects_set_height_two() {
        let p = Program::srl();
        // Building a set of sets exceeds set-height 1 in the SRL dialect.
        let e = insert(var("S"), empty_set());
        let ins = inputs(&[("S", Type::set_of(Type::Atom))]);
        let err = check_expr(&p, &e, &ins).unwrap_err();
        assert!(matches!(err, CheckError::TypeMismatch { .. }));
        // The same expression is fine in unrestricted SRL.
        let p = Program::new(Dialect::unrestricted());
        assert_eq!(
            check_expr(&p, &e, &ins),
            Ok(Type::set_of(Type::set_of(Type::Atom)))
        );
    }

    #[test]
    fn srl_rejects_set_height_two_inputs() {
        let p = Program::srl();
        let ins = inputs(&[("S", Type::set_of(Type::set_of(Type::Atom)))]);
        assert!(check_expr(&p, &var("S"), &ins).is_err());
    }

    #[test]
    fn basrl_rejects_set_valued_accumulators() {
        let p = Program::new(Dialect::basrl());
        let e = set_reduce(
            var("S"),
            Lambda::identity(),
            lam("x", "acc", insert(var("x"), var("acc"))),
            empty_set(),
            empty_set(),
        );
        let ins = inputs(&[("S", Type::set_of(Type::Atom))]);
        let err = check_expr(&p, &e, &ins).unwrap_err();
        assert!(matches!(err, CheckError::TypeMismatch { .. }));

        // A bounded-tuple accumulator is accepted.
        let ok = set_reduce(
            var("S"),
            Lambda::identity(),
            lam("x", "acc", tuple([var("x"), sel(var("acc"), 1)])),
            tuple([atom(0), atom(0)]),
            empty_set(),
        );
        assert_eq!(
            check_expr(&p, &ok, &ins),
            Ok(Type::tuple_of([Type::Atom, Type::Atom]))
        );
    }

    #[test]
    fn dialect_gates_operators() {
        let p = Program::srl();
        assert!(matches!(
            check_expr(&p, &new_value(empty_set()), &[]),
            Err(CheckError::DialectViolation { .. })
        ));
        assert!(matches!(
            check_expr(&p, &nat(3), &[]),
            Err(CheckError::DialectViolation { .. })
        ));
        assert!(matches!(
            check_expr(&p, &empty_list(), &[]),
            Err(CheckError::DialectViolation { .. })
        ));
        let p = Program::new(Dialect::full());
        assert_eq!(check_expr(&p, &new_value(empty_set()), &[]), Ok(Type::Atom));
        assert_eq!(check_expr(&p, &nat_add(nat(1), nat(2)), &[]), Ok(Type::Nat));
        assert_eq!(check_expr(&p, &succ(nat(1)), &[]), Ok(Type::Nat));
    }

    #[test]
    fn list_operations_typing() {
        let p = Program::new(Dialect::lrl());
        let l = cons(atom(1), cons(atom(2), empty_list()));
        assert_eq!(check_expr(&p, &l, &[]), Ok(Type::list_of(Type::Atom)));
        assert_eq!(check_expr(&p, &head(l.clone()), &[]), Ok(Type::Atom));
        assert_eq!(
            check_expr(&p, &tail(l.clone()), &[]),
            Ok(Type::list_of(Type::Atom))
        );
        let rebuilt = list_reduce(
            l,
            Lambda::identity(),
            lam("x", "acc", cons(var("x"), var("acc"))),
            empty_list(),
            empty_set(),
        );
        assert_eq!(check_expr(&p, &rebuilt, &[]), Ok(Type::list_of(Type::Atom)));
    }

    #[test]
    fn program_checking_with_signatures() {
        let p = Program::srl()
            .define_typed(
                "fst",
                [("t", Type::tuple_of([Type::Atom, Type::Atom]))],
                sel(var("t"), 1),
            )
            .define_typed(
                "swap",
                [("t", Type::tuple_of([Type::Atom, Type::Atom]))],
                tuple([sel(var("t"), 2), call("fst", [var("t")])]),
            );
        let checked = check_program(&p).unwrap();
        assert_eq!(checked.signatures["fst"].ret, Type::Atom);
        assert_eq!(
            checked.signatures["swap"].ret,
            Type::tuple_of([Type::Atom, Type::Atom])
        );
    }

    #[test]
    fn program_checking_requires_declared_param_types() {
        let p = Program::srl().define("id", ["x"], var("x"));
        assert!(check_program(&p).is_err());
    }

    #[test]
    fn call_arity_and_argument_types_checked() {
        let p = Program::srl().define_typed("needs_atom", [("x", Type::Atom)], tuple([var("x")]));
        let err = check_expr(&p, &call("needs_atom", [bool_(true)]), &[]).unwrap_err();
        assert!(matches!(err, CheckError::TypeMismatch { .. }));
        let err = check_expr(&p, &call("needs_atom", [atom(1), atom(2)]), &[]).unwrap_err();
        assert!(matches!(err, CheckError::ArityMismatch { .. }));
        let err = check_expr(&p, &call("missing", []), &[]).unwrap_err();
        assert!(matches!(err, CheckError::UnknownFunction(_)));
    }

    #[test]
    fn let_scoping_types() {
        let p = Program::srl();
        let e = let_in("a", atom(1), eq(var("a"), atom(2)));
        assert_eq!(check_expr(&p, &e, &[]), Ok(Type::Bool));
        let e = let_in("a", atom(1), var("missing"));
        assert!(matches!(
            check_expr(&p, &e, &[]),
            Err(CheckError::UnboundVariable(_))
        ));
    }

    #[test]
    fn relation_inputs_typecheck_member_style_query() {
        // member([x, y], EDGES)-style lookup: does the pair set contain a pair?
        let p = Program::srl();
        let e = set_reduce(
            var("EDGES"),
            lam("t", "pair", eq(var("t"), var("pair"))),
            lam("found", "acc", or(var("found"), var("acc"))),
            bool_(false),
            tuple([var("a"), var("b")]),
        );
        let ins = inputs(&[
            ("EDGES", Type::relation(2)),
            ("a", Type::Atom),
            ("b", Type::Atom),
        ]);
        assert_eq!(check_expr(&p, &e, &ins), Ok(Type::Bool));
    }
}
