//! # workloads — generators and native baselines for the SRL experiments
//!
//! Every experiment in the benchmark harness feeds on data produced here and
//! is checked against a native (plain Rust) baseline implemented here:
//!
//! * [`altgraph`] — alternating graphs and the APATH/AGAP problem
//!   (Definition 3.4, the P-complete problem of Lemma 3.6);
//! * [`digraph`] — directed graphs with BFS reachability, transitive closure
//!   and deterministic transitive closure (the Section 4 TC/DTC workloads);
//! * [`permutation`] — permutations and the iterated multiplication problem
//!   IMₛₙ (Definition 4.8, the L-complete problem of Lemma 4.10);
//! * [`cfi`] — the Cai–Fürer–Immerman graph pairs behind Theorem 7.7;
//! * [`wl`] — 1- and 2-dimensional Weisfeiler–Leman colour refinement, the
//!   bounded-variable counting-logic equivalence used to exhibit the CFI
//!   pairs' indistinguishability;
//! * [`tables`] — employee/department relational workloads (Fact 2.4 / E9);
//! * [`orderings`] — domain renamings for re-presenting the same database
//!   under a different element order (the Section 7 order-independence
//!   methodology).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod altgraph;
pub mod cfi;
pub mod digraph;
pub mod orderings;
pub mod permutation;
pub mod tables;
pub mod wl;

pub use altgraph::AlternatingGraph;
pub use cfi::{cfi_graph, cfi_pair, BaseGraph, CfiGraph};
pub use digraph::Digraph;
pub use orderings::DomainRenaming;
pub use permutation::{IteratedProductInstance, Permutation};
pub use tables::CompanyDatabase;
pub use wl::{isomorphic, refine_1wl, wl1_equivalent, wl2_equivalent, ColoredGraph};
