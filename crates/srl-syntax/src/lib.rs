//! # srl-syntax — a concrete syntax for SRL
//!
//! A pretty-printer that renders [`srl_core::Expr`] / [`srl_core::Program`]
//! values in the paper's notation (`set-reduce(…, lambda(x, y) …, …)`,
//! `if … then … else …`, selectors `e.1`), plus a printer for the *compiled*
//! form ([`srl_core::CompiledProgram`]) that resolves interned symbols back
//! to names and shows frame slots (`@0`) and definition indices (`f#3`) —
//! what the tree-walk evaluator runs — and a [`disasm`] printer for the
//! bytecode chunks the VM backend runs (register instructions, fused
//! superinstructions, block structure). The examples use the surface printer
//! to show the generated paper programs in readable form; a parser for the
//! same notation is future work (the builders in `srl-core::dsl` and
//! `srl-stdlib` are the supported way to construct programs).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod compiled;
pub mod disasm;
pub mod printer;

pub use compiled::{
    print_compiled_def, print_compiled_expr, print_compiled_program, print_lowered_expr,
};
pub use disasm::{disasm_chunk, disasm_lowered, disasm_program};
pub use printer::{print_expr, print_lambda, print_program};
