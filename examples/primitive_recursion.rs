//! Theorem 5.2: compile primitive recursive functions into SRL + new, where
//! the natural number k is the set {d₀, …, d_{k-1}} and succ inserts an
//! invented value.
//!
//! Run with `cargo run -p srl-examples --bin primitive_recursion`.

use machines::primrec::library;
use srl_core::eval::run_program;
use srl_core::{EvalLimits, Value};
use srl_examples::print_header;
use srl_stdlib::blowup::{lrl_doubling_program, names as blow};
use srl_stdlib::primrec_compile::{compile, eval_compiled};

fn main() {
    print_header("Primitive recursion compiled to SRL + new");
    for (name, term, args) in [
        ("add", library::add(), vec![5u64, 7]),
        ("mul", library::mul(), vec![4, 6]),
        ("factorial", library::factorial(), vec![5]),
    ] {
        let compiled = compile(&term).unwrap();
        let ground_truth = term.eval_u64(&args).unwrap();
        let srl = eval_compiled(&compiled, &args, EvalLimits::benchmark()).unwrap();
        println!("{name}{args:?}: SRL+new = {srl}, PrimRec ground truth = {ground_truth}");
    }

    print_header("The LRL blow-up (Corollary 5.5)");
    let doubling = lrl_doubling_program();
    for n in [2u64, 5, 8, 11] {
        let input = Value::list((0..n).map(Value::atom));
        match run_program(&doubling, blow::DOUBLING, &[input], EvalLimits::default()) {
            Ok((v, _)) => println!("n = {n}: list of {} ones", v.len().unwrap_or(0)),
            Err(e) => println!("n = {n}: stopped by the evaluator's budget ({e})"),
        }
    }
}
