//! # srl-serve — a sharded multi-tenant serving front end
//!
//! A long-lived TCP server speaking a line protocol: one JSON request per
//! line, one JSON response per line, both sides of the **versioned wire
//! contract** defined in [`srl_core::api`] (`"v": 1`). A served response
//! body is the [`api::compact`](srl_core::api::compact)-ed form of exactly
//! what `srl run/check/analyze --json` prints for the same query — one
//! contract, two transports — plus trailing `cache`/`id` fields.
//!
//! ## The tenant model
//!
//! Every request names a tenant (default: `"default"`). A tenant owns:
//!
//! * a [`PipelineConfig`](srl_core::PipelineConfig) — dialect, type policy,
//!   [`EvalLimits`](srl_core::EvalLimits) and the wall-clock deadline that
//!   acts as per-tenant admission control (wired to cooperative
//!   cancellation inside the evaluator);
//! * an input-binding environment — the REPL's `S := {…}` binding model
//!   promoted to the wire (`bind` requests), persisting across queries
//!   *and* connections;
//! * a [`ProgramCache`](cache::ProgramCache) of compiled artifacts keyed by
//!   `program_fingerprint`, with pooled evaluators and hit/miss/eviction
//!   counters surfaced in every `run` response;
//! * its own request counters (`stats` requests).
//!
//! Tenants are the server's shards: one mutex each, so queries of one
//! tenant serialize while different tenants proceed concurrently on the
//! session-accepting thread pool; inside a query, provably order-
//! independent folds shard across the evaluator's `srl-core::parallel`
//! worker pool (`threads` in the tenant config).
//!
//! ## Load shedding
//!
//! Past `max_inflight` concurrently evaluating queries, `run`/`check`/
//! `analyze` requests are shed with a structured `overloaded` error (wire
//! exit code 9); `bind` and `stats` are always served. See
//! [`server`] for the full policy.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod server;
pub mod tenant;

pub use cache::ProgramCache;
pub use server::{ServeConfig, Server, ServerHandle, DEFAULT_TENANT};
pub use tenant::{Tenant, TenantStats};
