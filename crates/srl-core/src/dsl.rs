//! Builder combinators for constructing SRL expressions from Rust.
//!
//! Every program in the paper is reconstructed programmatically (mostly in
//! the `srl-stdlib` crate); these free functions keep those constructions
//! readable. Boolean connectives are provided as the `if-then-else`
//! desugarings the paper notes ("boolean and, or, and not can easily be
//! defined with the if-then-else function").
//!
//! Names used here (variables, definitions) are purely for construction and
//! display: build-time lowering ([`crate::lower`]) interns every name to a
//! `u32` symbol and resolves every variable to a frame slot, so spelling
//! choices have zero run-time cost — pick the paper's names for
//! readability.

use crate::ast::{Expr, Lambda};
use crate::bignat::BigNat;
use crate::value::Value;

/// `true` / `false` literal.
pub fn bool_(b: bool) -> Expr {
    Expr::Bool(b)
}

/// A constant value.
pub fn const_v(v: Value) -> Expr {
    Expr::Const(v)
}

/// An atom constant with the given domain rank.
pub fn atom(i: u64) -> Expr {
    Expr::Const(Value::atom(i))
}

/// A variable reference.
pub fn var(name: impl Into<String>) -> Expr {
    Expr::Var(name.into())
}

/// `if c then t else e`.
pub fn if_(c: Expr, t: Expr, e: Expr) -> Expr {
    Expr::If(Box::new(c), Box::new(t), Box::new(e))
}

/// Tuple construction `[e1, …, en]`.
pub fn tuple(items: impl IntoIterator<Item = Expr>) -> Expr {
    Expr::Tuple(items.into_iter().collect())
}

/// Component selection, 1-based: `sel(e, 2)` is the paper's `e.2`.
pub fn sel(e: Expr, index: usize) -> Expr {
    Expr::Sel(index, Box::new(e))
}

/// Equality `e1 = e2`.
pub fn eq(a: Expr, b: Expr) -> Expr {
    Expr::Eq(Box::new(a), Box::new(b))
}

/// Domain order `e1 ≤ e2`.
pub fn leq(a: Expr, b: Expr) -> Expr {
    Expr::Leq(Box::new(a), Box::new(b))
}

/// The empty set.
pub fn empty_set() -> Expr {
    Expr::EmptySet
}

/// `insert(element, set)`.
pub fn insert(element: Expr, set: Expr) -> Expr {
    Expr::Insert(Box::new(element), Box::new(set))
}

/// A set literal `{e1, …, en}`, built from repeated inserts.
pub fn set_lit(items: impl IntoIterator<Item = Expr>) -> Expr {
    items.into_iter().fold(empty_set(), |acc, e| insert(e, acc))
}

/// `set-reduce(set, app, acc, base, extra)`.
pub fn set_reduce(set: Expr, app: Lambda, acc: Lambda, base: Expr, extra: Expr) -> Expr {
    Expr::SetReduce {
        set: Box::new(set),
        app,
        acc,
        base: Box::new(base),
        extra: Box::new(extra),
    }
}

/// `choose(set)`.
pub fn choose(set: Expr) -> Expr {
    Expr::Choose(Box::new(set))
}

/// `rest(set)`.
pub fn rest(set: Expr) -> Expr {
    Expr::Rest(Box::new(set))
}

/// A call to a named definition.
pub fn call(name: impl Into<String>, args: impl IntoIterator<Item = Expr>) -> Expr {
    Expr::Call(name.into(), args.into_iter().collect())
}

/// `let name = value in body`.
pub fn let_in(name: impl Into<String>, value: Expr, body: Expr) -> Expr {
    Expr::Let {
        name: name.into(),
        value: Box::new(value),
        body: Box::new(body),
    }
}

/// `new(set)` — an invented value (Section 5).
pub fn new_value(set: Expr) -> Expr {
    Expr::New(Box::new(set))
}

/// A natural-number constant.
pub fn nat(n: u64) -> Expr {
    Expr::NatConst(BigNat::from_u64(n))
}

/// A natural-number constant from a [`BigNat`].
pub fn nat_big(n: BigNat) -> Expr {
    Expr::NatConst(n)
}

/// `succ(e)` on naturals.
pub fn succ(e: Expr) -> Expr {
    Expr::Succ(Box::new(e))
}

/// `e1 + e2` on naturals.
pub fn nat_add(a: Expr, b: Expr) -> Expr {
    Expr::NatAdd(Box::new(a), Box::new(b))
}

/// `e1 * e2` on naturals.
pub fn nat_mul(a: Expr, b: Expr) -> Expr {
    Expr::NatMul(Box::new(a), Box::new(b))
}

/// The empty list.
pub fn empty_list() -> Expr {
    Expr::EmptyList
}

/// `cons(element, list)`.
pub fn cons(element: Expr, list: Expr) -> Expr {
    Expr::Cons(Box::new(element), Box::new(list))
}

/// `head(list)`.
pub fn head(list: Expr) -> Expr {
    Expr::Head(Box::new(list))
}

/// `tail(list)`.
pub fn tail(list: Expr) -> Expr {
    Expr::Tail(Box::new(list))
}

/// `list-reduce(list, app, acc, base, extra)`.
pub fn list_reduce(list: Expr, app: Lambda, acc: Lambda, base: Expr, extra: Expr) -> Expr {
    Expr::ListReduce {
        list: Box::new(list),
        app,
        acc,
        base: Box::new(base),
        extra: Box::new(extra),
    }
}

/// A two-parameter lambda `λ(x, y). body`.
pub fn lam(x: impl Into<String>, y: impl Into<String>, body: Expr) -> Lambda {
    Lambda::new(x, y, body)
}

/// Boolean negation, desugared to `if e then false else true`.
pub fn not(e: Expr) -> Expr {
    if_(e, bool_(false), bool_(true))
}

/// Boolean conjunction, desugared to `if a then b else false`.
pub fn and(a: Expr, b: Expr) -> Expr {
    if_(a, b, bool_(false))
}

/// Boolean disjunction, desugared to `if a then true else b`.
pub fn or(a: Expr, b: Expr) -> Expr {
    if_(a, bool_(true), b)
}

/// n-ary conjunction (true when empty).
pub fn and_all(items: impl IntoIterator<Item = Expr>) -> Expr {
    let mut iter = items.into_iter();
    match iter.next() {
        None => bool_(true),
        Some(first) => iter.fold(first, and),
    }
}

/// n-ary disjunction (false when empty).
pub fn or_any(items: impl IntoIterator<Item = Expr>) -> Expr {
    let mut iter = items.into_iter();
    match iter.next() {
        None => bool_(false),
        Some(first) => iter.fold(first, or),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_literal_builds_nested_inserts() {
        let e = set_lit([atom(1), atom(2)]);
        assert_eq!(e.operator_name(), "insert");
        assert_eq!(e.node_count(), 5); // insert(2, insert(1, {})) has 5 nodes
    }

    #[test]
    fn boolean_desugarings_shape() {
        assert_eq!(not(bool_(true)).operator_name(), "if");
        assert_eq!(and(bool_(true), bool_(false)).operator_name(), "if");
        assert_eq!(or(bool_(true), bool_(false)).operator_name(), "if");
    }

    #[test]
    fn nary_connectives_handle_empty_and_singleton() {
        assert_eq!(and_all([]), bool_(true));
        assert_eq!(or_any([]), bool_(false));
        assert_eq!(and_all([var("p")]), var("p"));
        assert_eq!(or_any([var("p")]), var("p"));
        assert_eq!(and_all([var("p"), var("q")]).operator_name(), "if");
    }

    #[test]
    fn lambda_helpers() {
        let l = lam("a", "b", var("a"));
        assert_eq!(l.x, "a");
        assert_eq!(l.y, "b");
        assert_eq!(*l.body, var("a"));
    }

    #[test]
    fn selector_is_one_based_by_convention() {
        let e = sel(var("t"), 1);
        match e {
            Expr::Sel(1, _) => {}
            other => panic!("unexpected {other:?}"),
        }
    }
}
