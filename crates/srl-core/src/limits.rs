//! Evaluation budgets and statistics.
//!
//! The unrestricted language reaches primitive recursive power (Theorem 5.2),
//! so a careless expression can try to build an astronomically large value.
//! The evaluator therefore runs against an [`EvalLimits`] budget and reports
//! what it actually used in [`EvalStats`]. The statistics are also how the
//! benchmark harness measures the paper's *space* claims — e.g. Theorem 4.13's
//! logspace bound shows up as a bounded `max_accumulator_weight` while the
//! input grows.

/// Resource budget for one evaluation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct EvalLimits {
    /// Maximum number of evaluation steps (each AST node visit counts once).
    pub max_steps: u64,
    /// Budget on the total number of value leaves allocated by collection
    /// constructors (`insert`, `cons`, tuple construction) over the whole
    /// evaluation; exceeding it aborts with `SizeLimitExceeded`.
    pub max_value_weight: usize,
    /// Maximum nesting depth of expression evaluation (guards the Rust stack).
    pub max_depth: usize,
    /// Maximum bit-length of any natural number constructed.
    pub max_nat_bits: usize,
    /// Optional wall-clock deadline for one root evaluation. Armed when the
    /// evaluation starts and polled amortized at the step-accounting sites
    /// (so, unlike the deterministic budgets above, where it fires depends on
    /// the machine); exceeding it aborts with `DeadlineExceeded`. `None`
    /// (the default everywhere) means no deadline.
    pub deadline: Option<std::time::Duration>,
}

impl EvalLimits {
    /// A budget suitable for unit tests and interactive use.
    pub fn default_budget() -> Self {
        EvalLimits {
            max_steps: 50_000_000,
            max_value_weight: 2_000_000,
            max_depth: 4_096,
            max_nat_bits: 1 << 20,
            deadline: None,
        }
    }

    /// A small budget, used to demonstrate that exponential fragments hit
    /// their limits exactly where the paper predicts.
    pub fn small() -> Self {
        EvalLimits {
            max_steps: 200_000,
            max_value_weight: 20_000,
            max_depth: 512,
            max_nat_bits: 1 << 14,
            deadline: None,
        }
    }

    /// A generous budget for the benchmark harness.
    pub fn benchmark() -> Self {
        EvalLimits {
            max_steps: u64::MAX,
            max_value_weight: usize::MAX,
            max_depth: 16_384,
            max_nat_bits: usize::MAX,
            deadline: None,
        }
    }

    /// Returns a copy with a different step budget.
    pub fn with_max_steps(mut self, steps: u64) -> Self {
        self.max_steps = steps;
        self
    }

    /// Returns a copy with a different value-weight budget.
    pub fn with_max_value_weight(mut self, weight: usize) -> Self {
        self.max_value_weight = weight;
        self
    }

    /// Returns a copy with a different depth budget.
    pub fn with_max_depth(mut self, depth: usize) -> Self {
        self.max_depth = depth;
        self
    }

    /// Returns a copy with a different natural-number width budget.
    pub fn with_max_nat_bits(mut self, bits: usize) -> Self {
        self.max_nat_bits = bits;
        self
    }

    /// Returns a copy with a wall-clock deadline (`None` disarms it).
    pub fn with_deadline(mut self, deadline: Option<std::time::Duration>) -> Self {
        self.deadline = deadline;
        self
    }

    /// Returns a copy with a wall-clock deadline of `ms` milliseconds.
    pub fn with_deadline_ms(self, ms: u64) -> Self {
        self.with_deadline(Some(std::time::Duration::from_millis(ms)))
    }
}

impl Default for EvalLimits {
    fn default() -> Self {
        Self::default_budget()
    }
}

/// What an evaluation actually consumed.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct EvalStats {
    /// Number of AST node visits.
    pub steps: u64,
    /// Number of `set-reduce` (or `list-reduce`) iterations performed — the
    /// paper's `|S|` factors in Lemma 3.9 and Proposition 6.1.
    pub reduce_iterations: u64,
    /// Number of `insert` operations performed (each costs `T_ins` in the
    /// paper's Proposition 6.1 accounting).
    pub inserts: u64,
    /// Largest weight of any value produced during evaluation.
    pub max_value_weight: usize,
    /// Largest weight of any *accumulator* value passed between iterations of
    /// a `set-reduce`. Theorem 4.13 (BASRL = L) predicts this stays O(log n)
    /// — in our value model, bounded by a constant number of leaves — even as
    /// the input grows.
    pub max_accumulator_weight: usize,
    /// Deepest expression nesting reached.
    pub max_depth: usize,
    /// Number of `new` invocations (invented values, Section 5).
    pub new_values: u64,
}

impl EvalStats {
    /// Merges another statistics record into this one (taking maxima of the
    /// high-water marks and sums of the counters).
    pub fn absorb(&mut self, other: &EvalStats) {
        self.steps += other.steps;
        self.reduce_iterations += other.reduce_iterations;
        self.inserts += other.inserts;
        self.new_values += other.new_values;
        self.max_value_weight = self.max_value_weight.max(other.max_value_weight);
        self.max_accumulator_weight = self
            .max_accumulator_weight
            .max(other.max_accumulator_weight);
        self.max_depth = self.max_depth.max(other.max_depth);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_budget_is_nontrivial() {
        let l = EvalLimits::default();
        assert!(l.max_steps > 1_000_000);
        assert!(l.max_value_weight > 10_000);
        assert!(l.max_depth >= 1_024);
    }

    #[test]
    fn builders() {
        let l = EvalLimits::small()
            .with_max_steps(10)
            .with_max_value_weight(20)
            .with_max_depth(30)
            .with_max_nat_bits(40)
            .with_deadline_ms(50);
        assert_eq!(l.max_steps, 10);
        assert_eq!(l.max_value_weight, 20);
        assert_eq!(l.max_depth, 30);
        assert_eq!(l.max_nat_bits, 40);
        assert_eq!(l.deadline, Some(std::time::Duration::from_millis(50)));
        assert_eq!(l.with_deadline(None).deadline, None);
        assert_eq!(EvalLimits::default().deadline, None);
    }

    #[test]
    fn stats_absorb() {
        let mut a = EvalStats {
            steps: 10,
            reduce_iterations: 2,
            inserts: 1,
            max_value_weight: 5,
            max_accumulator_weight: 3,
            max_depth: 7,
            new_values: 0,
        };
        let b = EvalStats {
            steps: 5,
            reduce_iterations: 8,
            inserts: 2,
            max_value_weight: 50,
            max_accumulator_weight: 1,
            max_depth: 2,
            new_values: 4,
        };
        a.absorb(&b);
        assert_eq!(a.steps, 15);
        assert_eq!(a.reduce_iterations, 10);
        assert_eq!(a.inserts, 3);
        assert_eq!(a.new_values, 4);
        assert_eq!(a.max_value_weight, 50);
        assert_eq!(a.max_accumulator_weight, 3);
        assert_eq!(a.max_depth, 7);
    }
}
