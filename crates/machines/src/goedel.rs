//! Gödel coding of finite sets as natural numbers.
//!
//! Direction (ii) of Theorem 5.2 ("ℱ(SRL + new) ⊆ PrimRec") encodes every
//! finite ordered set `S ⊆ D = {d₀ ≤ d₁ ≤ …}` as the natural number whose
//! binary expansion has bit `i` set iff `dᵢ ∈ S`; under that coding the SRL
//! base functions become primitive recursive:
//!
//! ```text
//! dᵢ            ↦  2^i
//! new(S)        ↦  Exp(2, Log(S) + 1)
//! insert(x, S)  ↦  Cond(Bit(i, S), S, Div(S, i-1) + 1 + Mod(S, i-1))   (i = Log(x))
//! choose(S)     ↦  Exp(2, Rlog(S))
//! rest(S)       ↦  Div(S, Rlog(S) + 1)
//! ```
//!
//! This module implements that coding both ways (sets of atoms ↔ numbers) and
//! the number-level versions of the base operations, so the experiments can
//! check that the SRL+new evaluator and the PrimRec simulation agree. Note
//! that the paper's `rest` *shifts* the remaining bits down; the coding of
//! `rest(S)` therefore renumbers the surviving elements — the experiments
//! account for this by comparing cardinalities and membership patterns rather
//! than raw atom identities after a `rest`.

use srl_core::bignat::BigNat;
use srl_core::value::Value;

/// Encodes a set of atoms as the number with bit `i` set iff atom `dᵢ` is in
/// the set. Returns `None` if the value is not a set of atoms.
pub fn encode_atom_set(v: &Value) -> Option<BigNat> {
    let set = v.as_set()?;
    let mut n = BigNat::zero();
    for item in set {
        let atom = item.as_atom()?;
        n.set_bit(usize::try_from(atom.index).ok()?);
    }
    Some(n)
}

/// Decodes a number back into the set of atoms whose indices are its set
/// bits.
pub fn decode_atom_set(n: &BigNat) -> Value {
    let mut items = Vec::new();
    for i in 0..n.bit_len() {
        if n.bit(i) {
            items.push(Value::atom(i as u64));
        }
    }
    Value::set(items)
}

/// The coding of a single atom `dᵢ`: the number `2^i`.
pub fn encode_atom(index: u64) -> BigNat {
    BigNat::pow2(index as usize)
}

/// The paper's Section 5 natural-number coding of the natural `k` itself:
/// `0 ↦ ∅`, `k+1 ↦ k ∪ {new(k)}`, i.e. the set `{d₀, …, d_{k-1}}`, whose
/// Gödel code is `2^k - 1`.
pub fn encode_natural_as_set(k: u64) -> Value {
    Value::set((0..k).map(Value::atom))
}

/// Reads back a natural from its set representation (the cardinality).
pub fn decode_natural_from_set(v: &Value) -> Option<u64> {
    v.as_set().map(|s| s.len() as u64)
}

/// Number-level `new(S) = Exp(2, Log(S) + 1)`: the code of a fresh element
/// one past the largest element of `S` (and `1 = 2^0` for the empty set).
pub fn new_code(s: &BigNat) -> BigNat {
    match s.highest_set_bit() {
        Some(log) => BigNat::pow2(log + 1),
        None => BigNat::pow2(0),
    }
}

/// Number-level `insert(x, S)`: sets bit `Log(x)` of `S`.
pub fn insert_code(x: &BigNat, s: &BigNat) -> BigNat {
    let i = x.highest_set_bit().unwrap_or(0);
    let mut out = s.clone();
    out.set_bit(i);
    out
}

/// Number-level `choose(S) = Exp(2, Rlog(S))`: the code of the minimal
/// element. Returns `None` for the empty set.
pub fn choose_code(s: &BigNat) -> Option<BigNat> {
    s.lowest_set_bit().map(BigNat::pow2)
}

/// Number-level `rest(S) = Div(S, Rlog(S) + 1)`: the paper's definition,
/// which *shifts* the remaining elements down by `Rlog(S) + 1` positions.
pub fn rest_code(s: &BigNat) -> Option<BigNat> {
    let r = s.lowest_set_bit()?;
    Some(s.shr(r + 1))
}

/// A "plain" rest that simply clears the lowest bit, preserving the identity
/// of the remaining elements. This is the version that agrees with the
/// evaluator's `rest`; the experiments use both to illustrate that the
/// paper's shifted coding preserves cardinality and traversal order even
/// though it renumbers elements.
pub fn rest_code_preserving(s: &BigNat) -> Option<BigNat> {
    let r = s.lowest_set_bit()?;
    let mut out = s.clone();
    out.clear_bit(r);
    Some(out)
}

/// Cardinality of a coded set (number of set bits).
pub fn cardinality(s: &BigNat) -> u64 {
    let mut count = 0;
    for i in 0..s.bit_len() {
        if s.bit(i) {
            count += 1;
        }
    }
    count
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(v: u64) -> BigNat {
        BigNat::from_u64(v)
    }

    #[test]
    fn encode_decode_roundtrip() {
        let s = Value::set([Value::atom(0), Value::atom(3), Value::atom(5)]);
        let code = encode_atom_set(&s).unwrap();
        assert_eq!(code, n(0b101001));
        assert_eq!(decode_atom_set(&code), s);
        assert_eq!(encode_atom_set(&Value::empty_set()), Some(BigNat::zero()));
        assert_eq!(decode_atom_set(&BigNat::zero()), Value::empty_set());
    }

    #[test]
    fn non_atom_sets_are_rejected() {
        let s = Value::set([Value::bool(true)]);
        assert_eq!(encode_atom_set(&s), None);
        assert_eq!(encode_atom_set(&Value::atom(1)), None);
    }

    #[test]
    fn atom_codes_are_powers_of_two() {
        assert_eq!(encode_atom(0), n(1));
        assert_eq!(encode_atom(3), n(8));
        assert_eq!(encode_atom(10), n(1024));
    }

    #[test]
    fn natural_coding_matches_paper() {
        // n + 1 = n ∪ {new(n)}; as a set {d0,…,d_{n-1}}, code 2^n - 1.
        assert_eq!(encode_natural_as_set(0), Value::empty_set());
        let three = encode_natural_as_set(3);
        assert_eq!(three.len(), Some(3));
        assert_eq!(encode_atom_set(&three).unwrap(), n(0b111));
        assert_eq!(decode_natural_from_set(&three), Some(3));
    }

    #[test]
    fn new_code_matches_definition() {
        // new(S) = Exp(2, Log(S) + 1).
        assert_eq!(new_code(&n(0b101001)), n(0b1000000));
        assert_eq!(new_code(&BigNat::zero()), n(1));
        // Inserting the fresh element then taking new again moves one further.
        let s = insert_code(&new_code(&n(0b1)), &n(0b1));
        assert_eq!(s, n(0b11));
        assert_eq!(new_code(&s), n(0b100));
    }

    #[test]
    fn insert_code_sets_the_right_bit() {
        // insert(d3, {d0, d5}): bit 3 gets set.
        let s = n(0b100001);
        let x = encode_atom(3);
        assert_eq!(insert_code(&x, &s), n(0b101001));
        // Inserting an existing element is a no-op (Cond(Bit(i,S), S, …)).
        assert_eq!(insert_code(&encode_atom(0), &s), s);
    }

    #[test]
    fn choose_and_rest_codes() {
        let s = n(0b101000); // {d3, d5}
        assert_eq!(choose_code(&s), Some(n(0b1000))); // d3
                                                      // Paper's rest shifts: Div(S, Rlog+1) = 0b101000 >> 4 = 0b10.
        assert_eq!(rest_code(&s), Some(n(0b10)));
        // The preserving rest keeps d5 in place.
        assert_eq!(rest_code_preserving(&s), Some(n(0b100000)));
        assert_eq!(choose_code(&BigNat::zero()), None);
        assert_eq!(rest_code(&BigNat::zero()), None);
    }

    #[test]
    fn rest_codes_agree_on_cardinality() {
        let s = n(0b1101101);
        let a = rest_code(&s).unwrap();
        let b = rest_code_preserving(&s).unwrap();
        assert_eq!(cardinality(&a), cardinality(&b));
        assert_eq!(cardinality(&a), cardinality(&s) - 1);
    }

    #[test]
    fn traversal_via_choose_rest_visits_all_elements() {
        // Walking choose/rest over the preserving coding enumerates exactly
        // the atoms of the set in ascending order.
        let original = Value::set([Value::atom(1), Value::atom(4), Value::atom(6)]);
        let mut code = encode_atom_set(&original).unwrap();
        let mut seen = Vec::new();
        while let Some(c) = choose_code(&code) {
            seen.push(c.lowest_set_bit().unwrap() as u64);
            code = rest_code_preserving(&code).unwrap();
        }
        assert_eq!(seen, vec![1, 4, 6]);
    }

    #[test]
    fn cardinality_counts_bits() {
        assert_eq!(cardinality(&BigNat::zero()), 0);
        assert_eq!(cardinality(&n(0b1011)), 3);
        assert_eq!(cardinality(&BigNat::pow2(100)), 1);
    }
}
