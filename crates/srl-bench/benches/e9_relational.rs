//! E9 — Fact 2.4 / Proposition 3.3: relational operators in SRL on the
//! company workload, vs. native nested-loop evaluation.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use srl_core::dsl::{empty_set, eq, lam, sel, tuple, var};
use srl_core::eval::eval_expr;
use srl_core::limits::EvalLimits;
use srl_core::program::Env;
use srl_stdlib::derived::{join, project, select};
use workloads::tables::CompanyDatabase;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e9_relational");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(200));
    group.measurement_time(std::time::Duration::from_millis(600));
    for n in [16usize, 32, 64] {
        let db = CompanyDatabase::generate(n, (n / 4).max(1), 4, 31 + n as u64);
        let env = Env::new()
            .bind("EMP", db.employees_value())
            .bind("DEPT", db.departments_value());
        let joined = join(
            var("EMP"),
            var("DEPT"),
            lam("e", "d", eq(sel(var("e"), 2), sel(var("d"), 1))),
            lam("e", "d", tuple([sel(var("e"), 1), sel(var("d"), 2)])),
        );
        let dept0 = db.departments[0].id;
        let selection = project(
            select(
                var("EMP"),
                lam("e", "x", eq(sel(var("e"), 2), srl_core::dsl::atom(dept0))),
                empty_set(),
            ),
            1,
        );
        group.bench_with_input(BenchmarkId::new("srl_join", n), &n, |b, _| {
            b.iter(|| eval_expr(&joined, &env, EvalLimits::benchmark()).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("srl_select_project", n), &n, |b, _| {
            b.iter(|| eval_expr(&selection, &env, EvalLimits::benchmark()).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("native_join", n), &n, |b, _| {
            b.iter(|| db.employee_manager_join())
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
