//! Recursive-descent parser for the SRL surface syntax.
//!
//! Parses exactly the notation [`crate::printer`] emits, so
//! `parse_program(print_program(p))` is structurally equal to `p` for every
//! program built from the repository's constructors (the round-trip suite in
//! `tests/tests/parser_roundtrip.rs` pins this over the full E1–E9 program
//! set). See the crate docs for the grammar in EBNF.
//!
//! ## Canonical parses
//!
//! A few printed forms are shared by more than one AST constructor; the
//! parser resolves each to a single canonical node:
//!
//! * `true` / `false` parse to [`Expr::Bool`] (never `Const(Value::Bool)`);
//! * decimal literals parse to [`Expr::NatConst`] (never `Const(Value::Nat)`);
//! * `[e1, …]` parses to [`Expr::Tuple`] (never `Const(Value::Tuple)`).
//!
//! The printer keeps the round trip exact by parenthesising the rare
//! constructs whose printed form would otherwise be ambiguous (selectors of
//! `if`/`let`/numeric literals); repository programs embed constants only as
//! atoms (`d7`) and naturals, both of which round-trip canonically. Set and
//! list *literals* (`{…}`, `<…>`) contain value syntax, not expressions, and
//! parse to [`Expr::Const`].
//!
//! Errors are structured [`ParseError`] values carrying byte [`Span`]s;
//! [`ParseError::to_diagnostic`] renders a caret-underlined source excerpt.

use std::fmt;

use srl_core::ast::{Expr, Lambda};
use srl_core::bignat::BigNat;
use srl_core::dialect::Dialect;
use srl_core::program::Program;
use srl_core::value::{Atom, Value};

use crate::lexer::lex;
use crate::span::{caret_excerpt, line_col, Span};
use crate::token::{is_keyword, Token, TokenKind};

/// What went wrong during lexing or parsing.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum ParseErrorKind {
    /// A character outside the language's alphabet.
    UnexpectedChar {
        /// The offending character.
        found: char,
    },
    /// A numeric literal that does not fit its context (e.g. an atom rank
    /// beyond `u64`).
    NumberOutOfRange,
    /// The parser needed one construct and found another token.
    UnexpectedToken {
        /// What the grammar allowed here.
        expected: String,
        /// Display form of the token found.
        found: String,
    },
    /// Input ended in the middle of a construct.
    UnexpectedEof {
        /// What the grammar still required.
        expected: String,
    },
    /// A bracketing construct was opened but never closed; the span points
    /// at the opening delimiter.
    UnclosedDelimiter {
        /// The opening delimiter, e.g. `(`.
        delimiter: &'static str,
    },
    /// A built-in operator head was applied to the wrong number of
    /// arguments (`insert` takes exactly 2, `choose` exactly 1, …).
    OperatorArity {
        /// The operator head.
        operator: &'static str,
        /// Its arity.
        expected: usize,
        /// Number of arguments written.
        found: usize,
    },
    /// A selector index that is not a positive integer (selectors are
    /// 1-based, as in the paper).
    SelectorIndex,
    /// A keyword was used where a name is required.
    ReservedWord {
        /// The keyword.
        word: String,
    },
    /// `lambda` appeared somewhere other than the `app`/`acc` argument of a
    /// reduce (lambdas are not first-class in SRL).
    LambdaPosition,
    /// Expressions or value literals nested deeper than
    /// [`MAX_PARSE_DEPTH`] — the recursive-descent parser bounds its own
    /// Rust stack before a hostile `((((…))))` can overflow it. The span
    /// points at the token where the limit was crossed.
    NestingTooDeep {
        /// The configured limit.
        limit: usize,
    },
}

/// A lexing or parsing error with its source location.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ParseError {
    /// The structured error.
    pub kind: ParseErrorKind,
    /// Where in the source it was detected.
    pub span: Span,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.kind {
            ParseErrorKind::UnexpectedChar { found } => {
                write!(f, "unexpected character `{found}`")
            }
            ParseErrorKind::NumberOutOfRange => write!(f, "numeric literal out of range"),
            ParseErrorKind::UnexpectedToken { expected, found } => {
                write!(f, "expected {expected}, found {found}")
            }
            ParseErrorKind::UnexpectedEof { expected } => {
                write!(f, "unexpected end of input: expected {expected}")
            }
            ParseErrorKind::UnclosedDelimiter { delimiter } => {
                write!(f, "this `{delimiter}` is never closed")
            }
            ParseErrorKind::OperatorArity {
                operator,
                expected,
                found,
            } => write!(
                f,
                "`{operator}` expects {expected} argument(s) but was given {found}"
            ),
            ParseErrorKind::SelectorIndex => {
                write!(
                    f,
                    "selector index must be a positive integer (selectors are 1-based)"
                )
            }
            ParseErrorKind::ReservedWord { word } => {
                write!(
                    f,
                    "`{word}` is a reserved word and cannot be used as a name"
                )
            }
            ParseErrorKind::LambdaPosition => write!(
                f,
                "`lambda` is only valid as the app/acc argument of set-reduce or list-reduce"
            ),
            ParseErrorKind::NestingTooDeep { limit } => write!(
                f,
                "expression nesting exceeds the parser's depth limit of {limit}"
            ),
        }
    }
}

impl std::error::Error for ParseError {}

impl ParseError {
    /// Resolves the error against its source text into a renderable
    /// [`Diagnostic`] (message, 1-based position, caret excerpt).
    pub fn to_diagnostic(&self, source_name: &str, source: &str) -> Diagnostic {
        let lc = line_col(source, self.span.start as usize);
        Diagnostic {
            message: self.to_string(),
            source_name: source_name.to_string(),
            line: lc.line,
            col: lc.col,
            excerpt: caret_excerpt(source, self.span),
        }
    }
}

/// A parse error resolved against its source: what, where, and a
/// caret-underlined excerpt. `Display` renders the full report:
///
/// ```text
/// error: expected `)`, found `,`
///   --> powerset.srl:3:14
///    |
///  3 |   insert(x, y, z)
///    |              ^
/// ```
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Diagnostic {
    /// The error message.
    pub message: String,
    /// Name of the source (file name, `<repl>`, …).
    pub source_name: String,
    /// 1-based line of the error.
    pub line: usize,
    /// 1-based column of the error.
    pub col: usize,
    /// The caret-underlined source excerpt.
    pub excerpt: String,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "error: {}", self.message)?;
        writeln!(f, "  --> {}:{}:{}", self.source_name, self.line, self.col)?;
        write!(f, "{}", self.excerpt)
    }
}

/// Parses a whole program (a sequence of `name(params) = body` definitions)
/// in the permissive [`Dialect::full`]. Use [`parse_program_in`] to record a
/// specific dialect; dialect *enforcement* happens in the checking stage of
/// the pipeline, not here.
pub fn parse_program(source: &str) -> Result<Program, ParseError> {
    parse_program_in(source, Dialect::full())
}

/// Parses a whole program into the given dialect.
pub fn parse_program_in(source: &str, dialect: Dialect) -> Result<Program, ParseError> {
    let mut parser = Parser::new(source)?;
    let program = parser.program(dialect)?;
    parser.expect_eof()?;
    Ok(program)
}

/// Parses a stand-alone expression; the whole input must be consumed.
pub fn parse_expr(source: &str) -> Result<Expr, ParseError> {
    let mut parser = Parser::new(source)?;
    let expr = parser.expr()?;
    parser.expect_eof()?;
    Ok(expr)
}

/// Parses a stand-alone two-parameter lambda, `lambda(x, y) body`.
pub fn parse_lambda(source: &str) -> Result<Lambda, ParseError> {
    let mut parser = Parser::new(source)?;
    parser.expect_kw("lambda")?;
    let lambda = parser.lambda_after_kw()?;
    parser.expect_eof()?;
    Ok(lambda)
}

/// Parses a value literal (`d3`, `42`, `true`, `[d1, d2]`, `{…}`, `<…>`) —
/// the notation `Value`'s `Display` prints, used for set/list literal
/// elements and for argument values on the `srl` command line.
pub fn parse_value(source: &str) -> Result<Value, ParseError> {
    let mut parser = Parser::new(source)?;
    let value = parser.value()?;
    parser.expect_eof()?;
    Ok(value)
}

/// Hard cap on parse-time nesting of expressions and value literals. Each
/// nesting level costs a handful of recursive-descent Rust frames (several
/// KiB in debug builds — a 2 MiB test-thread stack dies between 200 and 300
/// levels), so the cap keeps hostile input (`((((…))))`) from overflowing
/// the stack long before `EvalLimits::max_depth` could ever see the
/// program. Still generous relative to real programs: the deepest program
/// in the repository nests below 40.
pub const MAX_PARSE_DEPTH: usize = 128;

struct Parser<'s> {
    tokens: Vec<Token<'s>>,
    pos: usize,
    /// Current expression/value nesting depth, bounded by
    /// [`MAX_PARSE_DEPTH`].
    depth: usize,
}

impl<'s> Parser<'s> {
    fn new(source: &'s str) -> Result<Self, ParseError> {
        Ok(Parser {
            tokens: lex(source)?,
            pos: 0,
            depth: 0,
        })
    }

    /// Enters one nesting level of `expr`/`value` recursion; fails with a
    /// caret-spanned [`ParseErrorKind::NestingTooDeep`] at the current
    /// token once [`MAX_PARSE_DEPTH`] is crossed. Callers must pair it
    /// with a `depth -= 1` on every path (see `expr` and `value`).
    fn enter_nesting(&mut self) -> Result<(), ParseError> {
        if self.depth >= MAX_PARSE_DEPTH {
            return Err(ParseError {
                kind: ParseErrorKind::NestingTooDeep {
                    limit: MAX_PARSE_DEPTH,
                },
                span: self.peek().span,
            });
        }
        self.depth += 1;
        Ok(())
    }

    fn peek(&self) -> Token<'s> {
        self.tokens[self.pos]
    }

    fn bump(&mut self) -> Token<'s> {
        let tok = self.tokens[self.pos];
        if self.pos + 1 < self.tokens.len() {
            self.pos += 1;
        }
        tok
    }

    fn at_eof(&self) -> bool {
        matches!(self.peek().kind, TokenKind::Eof)
    }

    fn unexpected<T>(&self, expected: &str) -> Result<T, ParseError> {
        let tok = self.peek();
        Err(match tok.kind {
            TokenKind::Eof => ParseError {
                kind: ParseErrorKind::UnexpectedEof {
                    expected: expected.to_string(),
                },
                span: tok.span,
            },
            found => ParseError {
                kind: ParseErrorKind::UnexpectedToken {
                    expected: expected.to_string(),
                    found: found.to_string(),
                },
                span: tok.span,
            },
        })
    }

    fn expect(
        &mut self,
        kind: TokenKind<'static>,
        expected: &str,
    ) -> Result<Token<'s>, ParseError> {
        if self.peek().kind == kind {
            Ok(self.bump())
        } else {
            self.unexpected(expected)
        }
    }

    /// Like [`Parser::expect`] for a closing delimiter: at end of input the
    /// error points back at the unclosed opener instead of at nothing.
    fn expect_close(
        &mut self,
        kind: TokenKind<'static>,
        expected: &str,
        open: Span,
        open_text: &'static str,
    ) -> Result<Token<'s>, ParseError> {
        if self.at_eof() {
            return Err(ParseError {
                kind: ParseErrorKind::UnclosedDelimiter {
                    delimiter: open_text,
                },
                span: open,
            });
        }
        self.expect(kind, expected)
    }

    fn expect_kw(&mut self, word: &'static str) -> Result<Token<'s>, ParseError> {
        match self.peek().kind {
            TokenKind::Ident(w) if w == word => Ok(self.bump()),
            _ => self.unexpected(&format!("`{word}`")),
        }
    }

    fn expect_eof(&mut self) -> Result<(), ParseError> {
        if self.at_eof() {
            Ok(())
        } else {
            self.unexpected("end of input")
        }
    }

    /// A non-keyword identifier (definition name, parameter, variable).
    fn name(&mut self, what: &str) -> Result<(&'s str, Span), ParseError> {
        match self.peek().kind {
            TokenKind::Ident(w) if is_keyword(w) => Err(ParseError {
                kind: ParseErrorKind::ReservedWord {
                    word: w.to_string(),
                },
                span: self.peek().span,
            }),
            TokenKind::Ident(w) => {
                let span = self.bump().span;
                Ok((w, span))
            }
            _ => self.unexpected(what),
        }
    }

    // ------------------------------------------------------------------
    // Programs
    // ------------------------------------------------------------------

    fn program(&mut self, dialect: Dialect) -> Result<Program, ParseError> {
        let mut program = Program::new(dialect);
        while !self.at_eof() {
            let (name, _) = self.name("a definition name")?;
            let open = self.expect(TokenKind::LParen, "`(` after the definition name")?;
            let mut params: Vec<String> = Vec::new();
            if self.peek().kind != TokenKind::RParen {
                loop {
                    let (param, _) = self.name("a parameter name")?;
                    params.push(param.to_string());
                    match self.peek().kind {
                        TokenKind::Comma => {
                            self.bump();
                        }
                        _ => break,
                    }
                }
            }
            self.expect_close(
                TokenKind::RParen,
                "`,` or `)` in the parameter list",
                open.span,
                "(",
            )?;
            self.expect(TokenKind::Eq, "`=` before the definition body")?;
            let body = self.expr()?;
            program = program.define(name, params, body);
        }
        Ok(program)
    }

    // ------------------------------------------------------------------
    // Expressions
    // ------------------------------------------------------------------

    fn expr(&mut self) -> Result<Expr, ParseError> {
        self.enter_nesting()?;
        let result = self.expr_at_depth();
        self.depth -= 1;
        result
    }

    fn expr_at_depth(&mut self) -> Result<Expr, ParseError> {
        let mut expr = self.primary()?;
        // Postfix selectors: `e.1.2`.
        while self.peek().kind == TokenKind::Dot {
            let dot = self.bump();
            let index = match self.peek().kind {
                TokenKind::Number(digits) => {
                    let span = self.bump().span;
                    let index: usize = digits.parse().map_err(|_| ParseError {
                        kind: ParseErrorKind::NumberOutOfRange,
                        span,
                    })?;
                    if index == 0 {
                        return Err(ParseError {
                            kind: ParseErrorKind::SelectorIndex,
                            span,
                        });
                    }
                    index
                }
                _ => {
                    return Err(ParseError {
                        kind: ParseErrorKind::SelectorIndex,
                        span: dot.span.to(self.peek().span),
                    })
                }
            };
            expr = Expr::Sel(index, Box::new(expr));
        }
        Ok(expr)
    }

    fn primary(&mut self) -> Result<Expr, ParseError> {
        let tok = self.peek();
        match tok.kind {
            TokenKind::Ident(word) => self.word_form(word),
            TokenKind::Number(digits) => {
                self.bump();
                Ok(Expr::NatConst(bignat_from_decimal(digits)))
            }
            TokenKind::Atom(rank) => {
                self.bump();
                Ok(Expr::Const(Value::atom(rank)))
            }
            TokenKind::NamedAtom(name, rank) => {
                self.bump();
                Ok(Expr::Const(Value::Atom(Atom::named(rank, name))))
            }
            TokenKind::LBracket => {
                let open = self.bump();
                let mut items = Vec::new();
                if self.peek().kind != TokenKind::RBracket {
                    loop {
                        items.push(self.expr()?);
                        match self.peek().kind {
                            TokenKind::Comma => {
                                self.bump();
                            }
                            _ => break,
                        }
                    }
                }
                self.expect_close(
                    TokenKind::RBracket,
                    "`,` or `]` in the tuple",
                    open.span,
                    "[",
                )?;
                Ok(Expr::Tuple(items))
            }
            TokenKind::LBrace => {
                let values = self.braced_values()?;
                Ok(Expr::Const(Value::set(values)))
            }
            TokenKind::Lt => {
                let values = self.angled_values()?;
                Ok(Expr::Const(Value::list(values)))
            }
            TokenKind::LParen => {
                let open = self.bump();
                let lhs = self.expr()?;
                let expr = match self.peek().kind {
                    TokenKind::Eq => self.binary(lhs, Expr::Eq)?,
                    TokenKind::Leq => self.binary(lhs, Expr::Leq)?,
                    TokenKind::Plus => self.binary(lhs, Expr::NatAdd)?,
                    TokenKind::Star => self.binary(lhs, Expr::NatMul)?,
                    _ => lhs, // grouping parentheses
                };
                self.expect_close(
                    TokenKind::RParen,
                    "`)` or a binary operator (`=`, `<=`, `+`, `*`)",
                    open.span,
                    "(",
                )?;
                Ok(expr)
            }
            _ => self.unexpected("an expression"),
        }
    }

    fn binary(
        &mut self,
        lhs: Expr,
        build: impl FnOnce(Box<Expr>, Box<Expr>) -> Expr,
    ) -> Result<Expr, ParseError> {
        self.bump(); // the operator
        let rhs = self.expr()?;
        Ok(build(Box::new(lhs), Box::new(rhs)))
    }

    /// An expression starting with an identifier: a literal keyword, a
    /// structured form, a built-in operator application, a call, or a
    /// variable.
    fn word_form(&mut self, word: &'s str) -> Result<Expr, ParseError> {
        match word {
            "true" => {
                self.bump();
                Ok(Expr::Bool(true))
            }
            "false" => {
                self.bump();
                Ok(Expr::Bool(false))
            }
            "emptyset" => {
                self.bump();
                Ok(Expr::EmptySet)
            }
            "emptylist" => {
                self.bump();
                Ok(Expr::EmptyList)
            }
            "if" => {
                self.bump();
                let cond = self.expr()?;
                self.expect_kw("then")?;
                let then_branch = self.expr()?;
                self.expect_kw("else")?;
                let else_branch = self.expr()?;
                Ok(Expr::If(
                    Box::new(cond),
                    Box::new(then_branch),
                    Box::new(else_branch),
                ))
            }
            "let" => {
                self.bump();
                let (name, _) = self.name("a binding name")?;
                self.expect(TokenKind::Eq, "`=` after the `let` binding name")?;
                let value = self.expr()?;
                self.expect_kw("in")?;
                let body = self.expr()?;
                Ok(Expr::Let {
                    name: name.to_string(),
                    value: Box::new(value),
                    body: Box::new(body),
                })
            }
            "lambda" => Err(ParseError {
                kind: ParseErrorKind::LambdaPosition,
                span: self.peek().span,
            }),
            "set-reduce" => self.reduce_form(true),
            "list-reduce" => self.reduce_form(false),
            "choose" => self.unary_form("choose", |e| Expr::Choose(Box::new(e))),
            "rest" => self.unary_form("rest", |e| Expr::Rest(Box::new(e))),
            "new" => self.unary_form("new", |e| Expr::New(Box::new(e))),
            "succ" => self.unary_form("succ", |e| Expr::Succ(Box::new(e))),
            "head" => self.unary_form("head", |e| Expr::Head(Box::new(e))),
            "tail" => self.unary_form("tail", |e| Expr::Tail(Box::new(e))),
            "insert" => self.binary_form("insert", |a, b| Expr::Insert(Box::new(a), Box::new(b))),
            "cons" => self.binary_form("cons", |a, b| Expr::Cons(Box::new(a), Box::new(b))),
            // `then` / `else` / `in` reach here when an expression is
            // missing before them; report the missing expression.
            _ if is_keyword(word) => self.unexpected("an expression"),
            _ => {
                self.bump();
                if self.peek().kind == TokenKind::LParen {
                    let (args, _) = self.paren_args()?;
                    Ok(Expr::Call(word.to_string(), args))
                } else {
                    Ok(Expr::Var(word.to_string()))
                }
            }
        }
    }

    /// `head(args…)` for a built-in of arity 1.
    fn unary_form(
        &mut self,
        operator: &'static str,
        build: impl FnOnce(Expr) -> Expr,
    ) -> Result<Expr, ParseError> {
        let head = self.bump();
        let (mut args, close) = self.paren_args()?;
        if args.len() != 1 {
            return Err(ParseError {
                kind: ParseErrorKind::OperatorArity {
                    operator,
                    expected: 1,
                    found: args.len(),
                },
                span: head.span.to(close),
            });
        }
        Ok(build(args.remove(0)))
    }

    /// `head(args…)` for a built-in of arity 2.
    fn binary_form(
        &mut self,
        operator: &'static str,
        build: impl FnOnce(Expr, Expr) -> Expr,
    ) -> Result<Expr, ParseError> {
        let head = self.bump();
        let (mut args, close) = self.paren_args()?;
        if args.len() != 2 {
            return Err(ParseError {
                kind: ParseErrorKind::OperatorArity {
                    operator,
                    expected: 2,
                    found: args.len(),
                },
                span: head.span.to(close),
            });
        }
        let second = args.remove(1);
        Ok(build(args.remove(0), second))
    }

    /// `set-reduce(s, lambda…, lambda…, base, extra)` (or `list-reduce`).
    fn reduce_form(&mut self, set: bool) -> Result<Expr, ParseError> {
        self.bump(); // the head keyword
        let open = self.expect(TokenKind::LParen, "`(` after the reduce head")?;
        let collection = self.expr()?;
        self.expect(TokenKind::Comma, "`,` after the reduced collection")?;
        self.expect_kw("lambda")?;
        let app = self.lambda_after_kw()?;
        self.expect(TokenKind::Comma, "`,` after the app lambda")?;
        self.expect_kw("lambda")?;
        let acc = self.lambda_after_kw()?;
        self.expect(TokenKind::Comma, "`,` after the acc lambda")?;
        let base = self.expr()?;
        self.expect(TokenKind::Comma, "`,` after the base expression")?;
        let extra = self.expr()?;
        self.expect_close(TokenKind::RParen, "`)` closing the reduce", open.span, "(")?;
        Ok(if set {
            Expr::SetReduce {
                set: Box::new(collection),
                app,
                acc,
                base: Box::new(base),
                extra: Box::new(extra),
            }
        } else {
            Expr::ListReduce {
                list: Box::new(collection),
                app,
                acc,
                base: Box::new(base),
                extra: Box::new(extra),
            }
        })
    }

    /// `(x, y) body`, with the `lambda` keyword already consumed.
    fn lambda_after_kw(&mut self) -> Result<Lambda, ParseError> {
        self.expect(TokenKind::LParen, "`(` after `lambda`")?;
        let (x, _) = self.name("the first lambda parameter")?;
        self.expect(TokenKind::Comma, "`,` between the lambda parameters")?;
        let (y, _) = self.name("the second lambda parameter")?;
        self.expect(TokenKind::RParen, "`)` after the lambda parameters")?;
        let body = self.expr()?;
        Ok(Lambda::new(x, y, body))
    }

    /// A parenthesised, comma-separated argument list. Returns the arguments
    /// and the span of the closing parenthesis.
    fn paren_args(&mut self) -> Result<(Vec<Expr>, Span), ParseError> {
        let open = self.expect(TokenKind::LParen, "`(`")?;
        let mut args = Vec::new();
        if self.peek().kind != TokenKind::RParen {
            loop {
                args.push(self.expr()?);
                match self.peek().kind {
                    TokenKind::Comma => {
                        self.bump();
                    }
                    _ => break,
                }
            }
        }
        let close = self.expect_close(
            TokenKind::RParen,
            "`,` or `)` in the argument list",
            open.span,
            "(",
        )?;
        Ok((args, close.span))
    }

    // ------------------------------------------------------------------
    // Value literals
    // ------------------------------------------------------------------

    fn value(&mut self) -> Result<Value, ParseError> {
        self.enter_nesting()?;
        let result = self.value_at_depth();
        self.depth -= 1;
        result
    }

    fn value_at_depth(&mut self) -> Result<Value, ParseError> {
        let tok = self.peek();
        match tok.kind {
            TokenKind::Ident("true") => {
                self.bump();
                Ok(Value::bool(true))
            }
            TokenKind::Ident("false") => {
                self.bump();
                Ok(Value::bool(false))
            }
            TokenKind::Number(digits) => {
                self.bump();
                Ok(Value::Nat(bignat_from_decimal(digits)))
            }
            TokenKind::Atom(rank) => {
                self.bump();
                Ok(Value::atom(rank))
            }
            TokenKind::NamedAtom(name, rank) => {
                self.bump();
                Ok(Value::Atom(Atom::named(rank, name)))
            }
            TokenKind::LBracket => {
                let open = self.bump();
                let items = self.value_list(TokenKind::RBracket, open.span, "[")?;
                Ok(Value::tuple(items))
            }
            TokenKind::LBrace => Ok(Value::set(self.braced_values()?)),
            TokenKind::Lt => Ok(Value::list(self.angled_values()?)),
            _ => self.unexpected("a value literal (`d3`, `42`, `true`, `[…]`, `{…}`, `<…>`)"),
        }
    }

    fn braced_values(&mut self) -> Result<Vec<Value>, ParseError> {
        let open = self.expect(TokenKind::LBrace, "`{`")?;
        self.value_list(TokenKind::RBrace, open.span, "{")
    }

    fn angled_values(&mut self) -> Result<Vec<Value>, ParseError> {
        let open = self.expect(TokenKind::Lt, "`<`")?;
        self.value_list(TokenKind::Gt, open.span, "<")
    }

    fn value_list(
        &mut self,
        close: TokenKind<'static>,
        open: Span,
        open_text: &'static str,
    ) -> Result<Vec<Value>, ParseError> {
        let mut items = Vec::new();
        if self.peek().kind != close {
            loop {
                items.push(self.value()?);
                match self.peek().kind {
                    TokenKind::Comma => {
                        self.bump();
                    }
                    _ => break,
                }
            }
        }
        self.expect_close(close, "`,` or the closing delimiter", open, open_text)?;
        Ok(items)
    }
}

fn bignat_from_decimal(digits: &str) -> BigNat {
    digits.bytes().fold(BigNat::zero(), |acc, b| {
        acc.mul_u64(10).add(&BigNat::from_u64(u64::from(b - b'0')))
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use srl_core::dsl::*;

    fn roundtrip_expr(e: &Expr) {
        let text = crate::printer::print_expr(e);
        let parsed = parse_expr(&text).unwrap_or_else(|err| panic!("{text}: {err}"));
        assert_eq!(&parsed, e, "round trip of `{text}`");
        assert_eq!(
            crate::printer::print_expr(&parsed),
            text,
            "re-print fixpoint"
        );
    }

    #[test]
    fn literals_and_variables() {
        assert_eq!(parse_expr("true").unwrap(), bool_(true));
        assert_eq!(parse_expr("false").unwrap(), bool_(false));
        assert_eq!(parse_expr("d3").unwrap(), atom(3));
        assert_eq!(parse_expr("42").unwrap(), nat(42));
        assert_eq!(parse_expr("x").unwrap(), var("x"));
        assert_eq!(parse_expr("emptyset").unwrap(), empty_set());
        assert_eq!(parse_expr("emptylist").unwrap(), empty_list());
    }

    #[test]
    fn structured_forms() {
        assert_eq!(
            parse_expr("if b then d1 else d2").unwrap(),
            if_(var("b"), atom(1), atom(2))
        );
        assert_eq!(
            parse_expr("let x = d1 in x").unwrap(),
            let_in("x", atom(1), var("x"))
        );
        assert_eq!(parse_expr("[a, b]").unwrap(), tuple([var("a"), var("b")]));
        assert_eq!(parse_expr("t.2").unwrap(), sel(var("t"), 2));
        assert_eq!(parse_expr("(x = d1)").unwrap(), eq(var("x"), atom(1)));
        assert_eq!(parse_expr("(x <= y)").unwrap(), leq(var("x"), var("y")));
        assert_eq!(parse_expr("(1 + 2)").unwrap(), nat_add(nat(1), nat(2)));
        assert_eq!(parse_expr("(1 * 2)").unwrap(), nat_mul(nat(1), nat(2)));
        assert_eq!(
            parse_expr("insert(x, emptyset)").unwrap(),
            insert(var("x"), empty_set())
        );
        assert_eq!(
            parse_expr("union(A, B)").unwrap(),
            call("union", [var("A"), var("B")])
        );
    }

    #[test]
    fn nested_if_binds_greedily_like_the_printer() {
        let inner_then = if_(var("a"), if_(var("b"), var("c"), var("d")), var("e"));
        roundtrip_expr(&inner_then);
        let inner_cond = if_(if_(var("a"), var("b"), var("c")), var("d"), var("e"));
        roundtrip_expr(&inner_cond);
        let inner_else = if_(var("a"), var("b"), if_(var("c"), var("d"), var("e")));
        roundtrip_expr(&inner_else);
    }

    #[test]
    fn reduce_forms_roundtrip() {
        let e = set_reduce(
            var("S"),
            lam("x", "e", eq(var("x"), var("e"))),
            lam("v", "acc", insert(var("v"), var("acc"))),
            empty_set(),
            var("R"),
        );
        roundtrip_expr(&e);
        let l = list_reduce(
            var("L"),
            lam("x", "e", var("x")),
            lam("v", "acc", cons(var("v"), var("acc"))),
            empty_list(),
            var("R"),
        );
        roundtrip_expr(&l);
    }

    #[test]
    fn selectors_of_compound_expressions_roundtrip() {
        roundtrip_expr(&sel(if_(var("b"), var("t"), var("u")), 1));
        roundtrip_expr(&sel(let_in("x", var("v"), var("x")), 2));
        roundtrip_expr(&sel(eq(var("a"), var("b")), 1));
        roundtrip_expr(&sel(sel(var("t"), 1), 2));
        roundtrip_expr(&sel(nat(5), 1));
    }

    #[test]
    fn grouping_parens_add_no_node() {
        assert_eq!(
            parse_expr("(if b then t else u).1").unwrap(),
            sel(if_(var("b"), var("t"), var("u")), 1)
        );
        assert_eq!(parse_expr("(x)").unwrap(), var("x"));
    }

    #[test]
    fn set_and_list_value_literals() {
        assert_eq!(
            parse_expr("{d1, d2}").unwrap(),
            const_v(Value::set([Value::atom(1), Value::atom(2)]))
        );
        assert_eq!(
            parse_expr("{[d1, d2]}").unwrap(),
            const_v(Value::set([Value::tuple([Value::atom(1), Value::atom(2)])]))
        );
        assert_eq!(
            parse_expr("<d1, d1>").unwrap(),
            const_v(Value::list([Value::atom(1), Value::atom(1)]))
        );
        assert_eq!(
            parse_value("alice#5").unwrap(),
            Value::Atom(Atom::named(5, "alice"))
        );
        assert_eq!(parse_value("{}").unwrap(), Value::empty_set());
    }

    #[test]
    fn programs_parse_into_ordered_definitions() {
        let p = parse_program("first(t) =\n  t.1\n\nuses(t) =\n  first([t, t])\n\n").unwrap();
        assert_eq!(p.def_names(), vec!["first", "uses"]);
        assert_eq!(p.lookup("first").unwrap().body, sel(var("t"), 1));
        assert!(p.validate().is_ok());
    }

    #[test]
    fn empty_parameter_lists_parse() {
        let p = parse_program("main() = insert(d1, emptyset)").unwrap();
        assert_eq!(p.lookup("main").unwrap().params.len(), 0);
    }

    #[test]
    fn builtin_arity_is_checked_with_spans() {
        let err = parse_expr("insert(x)").unwrap_err();
        assert_eq!(
            err.kind,
            ParseErrorKind::OperatorArity {
                operator: "insert",
                expected: 2,
                found: 1
            }
        );
        assert_eq!(err.span, Span::new(0, 9));
        let err = parse_expr("choose(x, y)").unwrap_err();
        assert!(matches!(
            err.kind,
            ParseErrorKind::OperatorArity {
                operator: "choose",
                expected: 1,
                found: 2
            }
        ));
    }

    #[test]
    fn unclosed_paren_points_at_the_opener() {
        let err = parse_expr("insert(x, emptyset").unwrap_err();
        assert_eq!(
            err.kind,
            ParseErrorKind::UnclosedDelimiter { delimiter: "(" }
        );
        assert_eq!(err.span, Span::new(6, 7));
    }

    #[test]
    fn reserved_words_cannot_name_things() {
        let err = parse_program("if(x) = x").unwrap_err();
        assert!(matches!(err.kind, ParseErrorKind::ReservedWord { .. }));
        let err = parse_expr("let in = d1 in in").unwrap_err();
        assert!(matches!(err.kind, ParseErrorKind::ReservedWord { .. }));
    }

    #[test]
    fn lambda_outside_reduce_is_rejected() {
        let err = parse_expr("lambda(x, y) x").unwrap_err();
        assert_eq!(err.kind, ParseErrorKind::LambdaPosition);
        assert_eq!(
            parse_lambda("lambda(x, y) x").unwrap(),
            lam("x", "y", var("x"))
        );
    }

    #[test]
    fn selector_zero_is_rejected() {
        let err = parse_expr("t.0").unwrap_err();
        assert_eq!(err.kind, ParseErrorKind::SelectorIndex);
    }

    #[test]
    fn diagnostics_render_carets() {
        let err = parse_program("f(x) =\n  insert(x, y, z)\n").unwrap_err();
        let diag = err.to_diagnostic("demo.srl", "f(x) =\n  insert(x, y, z)\n");
        let rendered = diag.to_string();
        assert!(rendered.contains("error: `insert` expects 2 argument(s) but was given 3"));
        assert!(rendered.contains("demo.srl:2:3"), "{rendered}");
        assert!(rendered.contains('^'), "{rendered}");
    }

    #[test]
    fn big_naturals_parse_exactly() {
        let big = "123456789012345678901234567890";
        match parse_expr(big).unwrap() {
            Expr::NatConst(n) => assert_eq!(n.to_string(), big),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn nesting_below_the_cap_still_parses() {
        let depth = MAX_PARSE_DEPTH - 1;
        let text = format!("{}x{}", "(".repeat(depth), ")".repeat(depth));
        assert_eq!(parse_expr(&text).unwrap(), var("x"));
    }

    /// Golden test for the recursion guard: the 513th `(` (byte offset 512)
    /// crosses [`MAX_PARSE_DEPTH`], and the caret lands exactly on it.
    #[test]
    fn hostile_nesting_reports_a_spanned_error_instead_of_overflowing() {
        let depth = MAX_PARSE_DEPTH + 88;
        let text = format!("{}x{}", "(".repeat(depth), ")".repeat(depth));
        let err = parse_expr(&text).unwrap_err();
        assert_eq!(
            err.kind,
            ParseErrorKind::NestingTooDeep {
                limit: MAX_PARSE_DEPTH
            }
        );
        assert_eq!(err.span, Span::new(MAX_PARSE_DEPTH, MAX_PARSE_DEPTH + 1));
        let diag = err.to_diagnostic("hostile.srl", &text);
        assert_eq!((diag.line, diag.col), (1, MAX_PARSE_DEPTH + 1));
        assert!(
            diag.message
                .contains(&format!("depth limit of {MAX_PARSE_DEPTH}")),
            "{}",
            diag.message
        );
        assert!(diag.excerpt.contains('^'), "{}", diag.excerpt);
    }

    #[test]
    fn hostile_value_nesting_is_capped_too() {
        let depth = MAX_PARSE_DEPTH + 40;
        let text = "{".repeat(depth);
        let err = parse_value(&text).unwrap_err();
        assert_eq!(
            err.kind,
            ParseErrorKind::NestingTooDeep {
                limit: MAX_PARSE_DEPTH
            }
        );
        assert_eq!(err.span, Span::new(MAX_PARSE_DEPTH, MAX_PARSE_DEPTH + 1));
        // Nested tuples inside expressions ride the same guard.
        let text = format!("{}x{}", "[".repeat(depth), "]".repeat(depth));
        let err = parse_expr(&text).unwrap_err();
        assert_eq!(
            err.kind,
            ParseErrorKind::NestingTooDeep {
                limit: MAX_PARSE_DEPTH
            }
        );
    }
}
