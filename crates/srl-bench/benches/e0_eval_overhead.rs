//! E0 — evaluator overhead: isolates the clone-vs-share cost the zero-copy
//! refactor removed, on a nested-set reduce (the worst case for deep
//! cloning: every element is itself a set).
//!
//! Three measurements per size n (a set of n sets of n atoms):
//!
//! * `srl_rebuild_reduce` — the real evaluator running
//!   `set-reduce(S, id, insert, {}, {})`, which clones every element into
//!   the accumulator. With `Arc`-shared payloads each clone is O(1).
//! * `native_share` — the same traversal hand-written against `Value`:
//!   `elem.clone()` (reference-count bump) + insert.
//! * `native_deep_clone` — identical loop, but every element is copied
//!   structurally, emulating what the pre-refactor representation paid per
//!   iteration. The `native_share` / `native_deep_clone` gap is the
//!   isolated representation cost; `srl_rebuild_reduce` shows how much of
//!   the interpreter's time it dominated.
//!
//! A `rest_chain` pair does the same for `rest(rest(…))`: copy-on-write
//! `pop_first` versus rebuilding the set minus its minimum each step.

use std::collections::BTreeSet;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use srl_core::ast::Lambda;
use srl_core::dsl::*;
use srl_core::eval::eval_expr;
use srl_core::limits::EvalLimits;
use srl_core::program::Env;
use srl_core::value::Value;

/// Structural copy of a value — the cost model of the pre-refactor
/// representation, where `clone()` copied every node.
fn deep_copy(v: &Value) -> Value {
    match v {
        Value::Bool(_) | Value::Atom(_) | Value::Nat(_) => v.clone(),
        Value::Tuple(items) => Value::tuple(items.iter().map(deep_copy)),
        Value::Set(items) => Value::set(items.iter().map(deep_copy)),
        Value::List(items) => Value::list(items.iter().map(deep_copy)),
    }
}

fn nested_set(n: u64) -> Value {
    Value::set((0..n).map(|i| Value::set((0..n).map(|j| Value::atom(i * n + j)))))
}

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e0_eval_overhead");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(200));
    group.measurement_time(std::time::Duration::from_millis(600));
    for n in [8u64, 16, 32] {
        let input = nested_set(n);
        let rebuild = set_reduce(
            var("S"),
            Lambda::identity(),
            lam("x", "acc", insert(var("x"), var("acc"))),
            empty_set(),
            empty_set(),
        );
        let env = Env::new().bind("S", input.clone());
        group.bench_with_input(BenchmarkId::new("srl_rebuild_reduce", n), &n, |b, _| {
            b.iter(|| eval_expr(&rebuild, &env, EvalLimits::benchmark()).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("native_share", n), &n, |b, _| {
            b.iter(|| {
                let items = input.as_set().unwrap();
                let mut acc: BTreeSet<Value> = BTreeSet::new();
                for elem in items {
                    acc.insert(elem.clone());
                }
                acc.len()
            })
        });
        group.bench_with_input(BenchmarkId::new("native_deep_clone", n), &n, |b, _| {
            b.iter(|| {
                let items = input.as_set().unwrap();
                let mut acc: BTreeSet<Value> = BTreeSet::new();
                for elem in items {
                    acc.insert(deep_copy(elem));
                }
                acc.len()
            })
        });
        // rest(rest(…)) until empty: COW pop_first vs full rebuild per step
        // (both native, so only the representation cost differs — exactly
        // the two implementations of the evaluator's `Rest` operator).
        let flat = Value::set((0..n * n).map(Value::atom));
        group.bench_with_input(BenchmarkId::new("rest_chain_cow", n), &n, |b, _| {
            b.iter(|| {
                let mut s = flat.clone();
                let mut steps = 0u64;
                while let Value::Set(ref mut items) = s {
                    if items.is_empty() {
                        break;
                    }
                    std::sync::Arc::make_mut(items).pop_first();
                    steps += 1;
                }
                steps
            })
        });
        group.bench_with_input(BenchmarkId::new("rest_chain_rebuild", n), &n, |b, _| {
            b.iter(|| {
                let mut s = flat.as_set().unwrap().clone();
                let mut steps = 0u64;
                while let Some(min) = s.iter().next().cloned() {
                    // The seed's rest(): copy the whole set, then remove.
                    let mut copy = s.clone();
                    copy.remove(&min);
                    s = copy;
                    steps += 1;
                }
                steps
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
