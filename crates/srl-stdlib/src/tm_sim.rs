//! Turing-machine simulation in SRL (Proposition 6.2 and Corollary 6.3).
//!
//! Proposition 6.2 simulates a DTIME(n) machine by an SRL expression of
//! width 2 and depth 3: the input is the set of pairs `{[i, xᵢ]}`, the work
//! tape is another set of pairs, and one `set-reduce` over the input set
//! drives one machine step per iteration, with inner `set-reduce`s reading
//! the cells under the heads and rebuilding the work tape.
//!
//! This module is a *compiler*: given any [`TuringMachine`] from the
//! `machines` crate it emits the corresponding SRL program, specialised on
//! the machine's transition table (compiled into nested `if`s) but generic in
//! the input. The encoding:
//!
//! * tape positions are the atoms `0 … n` (one past the input length, the
//!   always-blank cell), and the domain `D` is exactly that set of positions;
//! * tape symbols and machine states are also atoms (their numeric ids);
//! * the machine configuration is the bounded-width tuple
//!   `[W, p₁, p₂, q]` — work tape, input head, work head, state — matching
//!   the paper's `[W, P1, P2]` plus the state the paper leaves implicit;
//! * one simulation step is `step(D, S, X)`; `simulate(D, S)` folds it over
//!   `D` (|D| = n + 1 steps, enough for the DTIME(n) machines), and
//!   `simulate_square(D, S)` folds it over `D × D` for the Corollary 6.3
//!   regime.

use srl_core::ast::{Expr, Lambda};
use srl_core::dsl::*;
use srl_core::program::Program;
use srl_core::value::Value;

use machines::tm::{Configuration, Move, Symbol, TuringMachine, BLANK};

use crate::arith::arithmetic_program;
use crate::arith::names as arith;

/// Names of the definitions produced by [`compile`].
pub mod names {
    /// `read_cell(T, p) → symbol` — the symbol stored at position `p`.
    pub const READ_CELL: &str = "read_cell";
    /// `write_cell(T, p, s) → tape` — the tape with position `p` overwritten.
    pub const WRITE_CELL: &str = "write_cell";
    /// `step(D, S, X) → X'` — one machine step on configuration `X`.
    pub const STEP: &str = "tm_step";
    /// `init_work(D) → tape` — the all-blank work tape.
    pub const INIT_WORK: &str = "init_work";
    /// `simulate(D, S) → X` — |D| steps from the initial configuration.
    pub const SIMULATE: &str = "simulate";
    /// `simulate_square(D, S) → X` — |D|² steps (Corollary 6.3's regime).
    pub const SIMULATE_SQUARE: &str = "simulate_square";
    /// `accepts(D, S) → bool` — is the state after `simulate` accepting?
    pub const ACCEPTS: &str = "accepts";
}

/// Compiles a Turing machine into an SRL program (plus the Section 4
/// arithmetic it uses for head movement).
pub fn compile(machine: &TuringMachine) -> Program {
    let program = arithmetic_program();

    // read_cell(T, p): scan the tape set for the pair at position p; the
    // blank is returned when no pair matches (the "one past the end" cell).
    let program = program.define(
        names::READ_CELL,
        ["T", "p"],
        set_reduce(
            var("T"),
            lam(
                "c",
                "p0",
                tuple([sel(var("c"), 2), eq(sel(var("c"), 1), var("p0"))]),
            ),
            lam(
                "pr",
                "acc",
                if_(sel(var("pr"), 2), sel(var("pr"), 1), var("acc")),
            ),
            atom(u64::from(BLANK)),
            var("p"),
        ),
    );

    // write_cell(T, p, s): rebuild the tape with the cell at p replaced.
    let program = program.define(
        names::WRITE_CELL,
        ["T", "p", "s"],
        set_reduce(
            var("T"),
            Lambda::identity(),
            lam(
                "c",
                "acc",
                if_(
                    eq(sel(var("c"), 1), var("p")),
                    insert(tuple([var("p"), var("s")]), var("acc")),
                    insert(var("c"), var("acc")),
                ),
            ),
            empty_set(),
            empty_set(),
        ),
    );

    // init_work(D): the all-blank work tape {[p, blank] | p ∈ D}.
    let program = program.define(
        names::INIT_WORK,
        ["D"],
        set_reduce(
            var("D"),
            Lambda::identity(),
            lam(
                "p",
                "acc",
                insert(tuple([var("p"), atom(u64::from(BLANK))]), var("acc")),
            ),
            empty_set(),
            empty_set(),
        ),
    );

    // step(D, S, X): read the two cells, then dispatch on the transition
    // table. X = [W, p1, p2, q].
    let mut dispatch: Expr = var("X"); // no transition applies: halt (stay put).
    for ((state, input_sym, work_sym), action) in machine.transitions.iter().rev() {
        let move_expr = |head: Expr, mv: Move| -> Expr {
            match mv {
                Move::Left => call(arith::DEC, [var("D"), head]),
                Move::Stay => head,
                Move::Right => call(arith::INC, [var("D"), head]),
            }
        };
        let then_branch = tuple([
            call(
                names::WRITE_CELL,
                [
                    sel(var("X"), 1),
                    sel(var("X"), 3),
                    atom(u64::from(action.write)),
                ],
            ),
            move_expr(sel(var("X"), 2), action.input_move),
            move_expr(sel(var("X"), 3), action.work_move),
            atom(u64::from(action.next_state)),
        ]);
        let cond = and(
            eq(sel(var("X"), 4), atom(u64::from(*state))),
            and(
                eq(var("isym"), atom(u64::from(*input_sym))),
                eq(var("wsym"), atom(u64::from(*work_sym))),
            ),
        );
        dispatch = if_(cond, then_branch, dispatch);
    }
    let step_body = let_in(
        "isym",
        call(names::READ_CELL, [var("S"), sel(var("X"), 2)]),
        let_in(
            "wsym",
            call(names::READ_CELL, [sel(var("X"), 1), sel(var("X"), 3)]),
            dispatch,
        ),
    );
    let program = program.define(names::STEP, ["D", "S", "X"], step_body);

    // The initial configuration: blank work tape, both heads at the first
    // position, start state.
    let initial = tuple([
        call(names::INIT_WORK, [var("D")]),
        choose(var("D")),
        choose(var("D")),
        atom(u64::from(machine.start_state)),
    ]);

    // simulate(D, S): |D| steps.
    let program = program.define(
        names::SIMULATE,
        ["D", "S"],
        set_reduce(
            var("D"),
            Lambda::identity(),
            lam("t", "X", call(names::STEP, [var("D"), var("S"), var("X")])),
            initial.clone(),
            empty_set(),
        ),
    );

    // simulate_square(D, S): |D|² steps, for machines that need more than
    // linear time (Corollary 6.3 with k = 2).
    let program = program.define(
        names::SIMULATE_SQUARE,
        ["D", "S"],
        set_reduce(
            var("D"),
            Lambda::identity(),
            lam(
                "outer",
                "Xo",
                set_reduce(
                    var("D"),
                    Lambda::identity(),
                    lam("t", "X", call(names::STEP, [var("D"), var("S"), var("X")])),
                    var("Xo"),
                    empty_set(),
                ),
            ),
            initial,
            empty_set(),
        ),
    );

    // accepts(D, S): is the final state accepting?
    let accept_check = machine
        .accept_states
        .iter()
        .map(|&q| eq(sel(var("X"), 4), atom(u64::from(q))))
        .fold(bool_(false), or);
    program.define(
        names::ACCEPTS,
        ["D", "S"],
        let_in(
            "X",
            call(names::SIMULATE, [var("D"), var("S")]),
            accept_check,
        ),
    )
}

/// Encodes a machine input word as the SRL input-tape set
/// `{[0, x₀], …, [n-1, x_{n-1}], [n, blank]}`.
pub fn encode_input(input: &[Symbol]) -> Value {
    let mut cells: Vec<Value> = input
        .iter()
        .enumerate()
        .map(|(i, &s)| Value::tuple([Value::atom(i as u64), Value::atom(u64::from(s))]))
        .collect();
    cells.push(Value::tuple([
        Value::atom(input.len() as u64),
        Value::atom(u64::from(BLANK)),
    ]));
    Value::set(cells)
}

/// The position domain for an input of length `n`: the atoms `0 … n`.
pub fn position_domain(input_len: usize) -> Value {
    Value::set((0..=input_len as u64).map(Value::atom))
}

/// Decodes the SRL configuration tuple `[W, p1, p2, q]` into the fields of a
/// [`Configuration`] (the work tape is materialised over `0 … n`).
pub fn decode_configuration(value: &Value, input: &[Symbol]) -> Option<Configuration> {
    let t = value.as_tuple()?;
    if t.len() != 4 {
        return None;
    }
    let n = input.len();
    let mut work = vec![BLANK; n + 1];
    for cell in t[0].as_set()? {
        let pair = cell.as_tuple()?;
        let pos = pair[0].as_atom()?.index as usize;
        let sym = pair[1].as_atom()?.index as u8;
        if pos < work.len() {
            work[pos] = sym;
        }
    }
    Some(Configuration {
        state: t[3].as_atom()?.index as u32,
        input: input.to_vec(),
        work,
        input_head: t[1].as_atom()?.index as usize,
        work_head: t[2].as_atom()?.index as usize,
        steps: 0,
    })
}

#[cfg(test)]
mod tests {
    use super::names::*;
    use super::*;
    use machines::tm::library::{copy_input, encode_word, ends_with_a, even_parity, SYM_A};
    use machines::tm::Halt;
    use srl_core::eval::run_program;
    use srl_core::limits::EvalLimits;

    fn srl_accepts(machine: &TuringMachine, word: &str) -> bool {
        let input = encode_word(word);
        let program = compile(machine);
        let (v, _) = run_program(
            &program,
            ACCEPTS,
            &[position_domain(input.len()), encode_input(&input)],
            EvalLimits::benchmark(),
        )
        .expect("simulation runs");
        v.as_bool().expect("accepts returns a boolean")
    }

    #[test]
    fn compiled_program_validates() {
        assert!(compile(&even_parity()).validate().is_ok());
        assert!(compile(&copy_input()).validate().is_ok());
    }

    #[test]
    fn parity_machine_agrees_with_native_runner() {
        let machine = even_parity();
        for word in ["", "a", "aa", "ab", "abab", "baab", "bbb", "aaab"] {
            let native = machine.accepts(&encode_word(word), 1_000);
            assert_eq!(srl_accepts(&machine, word), native, "word = {word:?}");
        }
    }

    #[test]
    fn ends_with_a_machine_agrees_with_native_runner() {
        let machine = ends_with_a();
        for word in ["a", "b", "ab", "ba", "aba", "abb", "bba"] {
            let native = machine.accepts(&encode_word(word), 1_000);
            assert_eq!(srl_accepts(&machine, word), native, "word = {word:?}");
        }
    }

    #[test]
    fn copy_machine_reproduces_the_work_tape() {
        let machine = copy_input();
        let input = encode_word("abba");
        let native = machine.run(&input, 1_000, false);
        assert_eq!(native.halt, Halt::Accept);

        let program = compile(&machine);
        let (v, _) = run_program(
            &program,
            SIMULATE,
            &[position_domain(input.len()), encode_input(&input)],
            EvalLimits::benchmark(),
        )
        .unwrap();
        let config = decode_configuration(&v, &input).expect("configuration decodes");
        assert_eq!(config.state, native.final_config.state);
        assert_eq!(config.input_head, native.final_config.input_head);
        assert_eq!(config.work_head, native.final_config.work_head);
        assert_eq!(
            &config.work[..input.len()],
            &native.final_config.work[..input.len()]
        );
    }

    #[test]
    fn step_for_step_agreement_on_parity() {
        // Drive the SRL `step` function one application at a time and compare
        // each configuration with the native runner's trace.
        let machine = even_parity();
        let input = vec![SYM_A; 4];
        let native = machine.run(&input, 100, true);
        let trace = native.trace.unwrap();

        let program = compile(&machine);
        let mut evaluator = srl_core::eval::Evaluator::new(&program, EvalLimits::benchmark());
        // Build the initial SRL configuration via simulate over an empty step
        // set (zero steps): reuse init_work + the same layout by stepping
        // manually from the decoded initial configuration.
        let domain = position_domain(input.len());
        let work0 = evaluator
            .call(INIT_WORK, std::slice::from_ref(&domain))
            .unwrap();
        let mut config = Value::tuple([
            work0,
            Value::atom(0),
            Value::atom(0),
            Value::atom(u64::from(machine.start_state)),
        ]);
        let tape = encode_input(&input);
        for (i, expected) in trace.iter().enumerate() {
            let decoded = decode_configuration(&config, &input).unwrap();
            assert_eq!(decoded.state, expected.state, "state at step {i}");
            assert_eq!(
                decoded.input_head, expected.input_head,
                "input head at step {i}"
            );
            assert_eq!(
                decoded.work_head, expected.work_head,
                "work head at step {i}"
            );
            config = evaluator
                .call(STEP, &[domain.clone(), tape.clone(), config.clone()])
                .unwrap();
        }
    }

    #[test]
    fn square_simulation_agrees_on_halted_machines() {
        // Once a machine has halted, extra steps change nothing, so the |D|²
        // simulation gives the same answer as the |D| one on linear-time
        // machines.
        let machine = even_parity();
        let input = encode_word("abab");
        let program = compile(&machine);
        let args = [position_domain(input.len()), encode_input(&input)];
        let (a, _) = run_program(&program, SIMULATE, &args, EvalLimits::benchmark()).unwrap();
        let (b, _) =
            run_program(&program, SIMULATE_SQUARE, &args, EvalLimits::benchmark()).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn input_encoding_shapes() {
        let input = encode_word("ab");
        let v = encode_input(&input);
        assert_eq!(v.len(), Some(3)); // two symbols + the trailing blank
        assert_eq!(position_domain(2).len(), Some(3));
    }

    #[test]
    fn measured_cost_grows_roughly_quadratically() {
        // Proposition 6.2's remark: the expression evaluates in O(n²·T_ins),
        // far below the loose syntactic n⁶ bound. Check that reduce-iteration
        // counts grow sub-cubically.
        let machine = even_parity();
        let program = compile(&machine);
        let mut counts = Vec::new();
        for n in [4usize, 8, 16] {
            let input = vec![SYM_A; n];
            let (_, stats) = run_program(
                &program,
                SIMULATE,
                &[position_domain(n), encode_input(&input)],
                EvalLimits::benchmark(),
            )
            .unwrap();
            counts.push(stats.reduce_iterations as f64);
        }
        let ratio1 = counts[1] / counts[0];
        let ratio2 = counts[2] / counts[1];
        // Doubling n should roughly quadruple the work (quadratic), and must
        // stay well below the ×64 that cubic-or-worse growth would give.
        assert!(ratio1 < 8.0, "ratio1 = {ratio1}");
        assert!(ratio2 < 8.0, "ratio2 = {ratio2}");
    }
}
