//! The register VM: the dispatch loop over [`crate::bytecode`] chunks.
//!
//! Execution state is the same [`EvalCore`] the tree-walking evaluator uses —
//! one `Vec<Value>` register file with a frame base, the [`EvalStats`]
//! counters and the [`EvalLimits`] budget — so the two backends share every
//! accounting helper and cannot drift in what they charge. The contract (see
//! the `bytecode` module docs): on successful evaluations the VM's results
//! *and statistics* are byte-identical to the tree-walk's; on error paths the
//! error kind matches while partial counters may differ by instruction
//! reordering (with the double-limit caveat documented on
//! [`ExecBackend`](crate::eval::ExecBackend): a batch crossing both the step
//! and depth budget reports the step error first).
//!
//! The interesting work is in the fused [`ReduceKind`]s, which replay the
//! tree-walk's per-iteration accounting in closed form (batched step/depth
//! charges, arithmetic accumulator-weight tracking) while the data path runs
//! as a binary search ([`ReduceKind::Member`]), a bulk sorted merge
//! ([`ReduceKind::Union`] over [`SetRepr::merge_union`]), or an in-place
//! insert loop on a uniquely-held accumulator (the other fused kinds).
//! Batching is sound because every limit counter is monotone: a batch total
//! crosses the budget if and only if some step inside the batch crossed it.

use std::sync::Arc;

use crate::bytecode::{BlockId, Chunk, DialectOp, Insn, Operand, ReduceInsn, ReduceKind, SetTier};
use crate::error::EvalError;
use crate::eval::{
    choose_min, head_value, next_fresh_index, require_dialect, rest_value, sel_component_ref,
    tail_value, weight_capped, EvalCore, ACCUMULATOR_WEIGHT_CAP,
};
use crate::lower::CompiledProgram;
use crate::value::{Atom, Value};

/// Everything a running chunk resolves through: the compiled program (for
/// dialect flags and definition names in diagnostics), the program chunk
/// (for callee blocks), and the worker-pool width for splittable folds.
pub(crate) struct VmCtx<'a> {
    pub(crate) program: &'a CompiledProgram,
    pub(crate) pchunk: &'a Chunk,
    /// Worker-pool width for proper-hom folds (see `crate::parallel`);
    /// `1` means sequential. Shard workers always run with `threads: 1` —
    /// nested folds inside a sharded lambda never spawn again.
    pub(crate) threads: usize,
}

impl<'a> VmCtx<'a> {
    /// The same resolution context with the worker pool disabled — what
    /// shard workers run under.
    pub(crate) fn sequential(&self) -> VmCtx<'a> {
        VmCtx {
            program: self.program,
            pchunk: self.pchunk,
            threads: 1,
        }
    }
}

const PAD: Value = Value::Bool(false);

/// Runs an expression chunk's main block in the current root frame (the
/// environment inputs are already in slots `0..n`); returns the result.
pub(crate) fn run_expr(
    core: &mut EvalCore,
    ctx: &VmCtx<'_>,
    chunk: &Chunk,
) -> Result<Value, EvalError> {
    core.spine_delta = 0;
    pad_frame(core, chunk.main_frame());
    run_block(core, ctx, chunk, chunk.main(), 0)?;
    Ok(core.take_reg(chunk.block(chunk.main()).result()))
}

/// Runs a definition's block in the current root frame (the arguments are
/// already in slots `0..arity`); returns the result.
pub(crate) fn run_def(core: &mut EvalCore, ctx: &VmCtx<'_>, def: u32) -> Result<Value, EvalError> {
    core.spine_delta = 0;
    let entry = ctx.pchunk.defs()[def as usize];
    pad_frame(core, entry.frame_size);
    run_block(core, ctx, ctx.pchunk, entry.block, 0)?;
    Ok(core.take_reg(ctx.pchunk.block(entry.block).result()))
}

fn pad_frame(core: &mut EvalCore, frame_size: u16) {
    let want = core.frame_base + frame_size as usize;
    while core.locals.len() < want {
        core.locals.push(PAD);
    }
}

/// Caps a running accumulator weight exactly like
/// [`weight_capped`]: exact while `≤ cap`, pinned to `cap + 1` beyond.
#[inline]
pub(crate) fn capped(w: usize) -> usize {
    if w > ACCUMULATOR_WEIGHT_CAP {
        ACCUMULATOR_WEIGHT_CAP + 1
    } else {
        w
    }
}

/// Grows a running accumulator weight by a novel element's weight (or a
/// batch of novel weights: saturation only depends on the running total),
/// saturating at the cap sentinel.
#[inline]
pub(crate) fn cap_add(acc_w: usize, w: usize) -> usize {
    if acc_w > ACCUMULATOR_WEIGHT_CAP {
        acc_w
    } else {
        capped(acc_w.saturating_add(w))
    }
}

/// Charges the fused steps of an [`Operand`] (the child visits the tree-walk
/// performed), then validates it so shape errors surface in operand order.
fn operand_prep(core: &mut EvalCore, op: Operand, node_depth: usize) -> Result<(), EvalError> {
    match op {
        Operand::Temp(_) => Ok(()),
        Operand::Slot(_) | Operand::Const(_) => core.bump_step(node_depth + 1),
        Operand::SlotSel(slot, index) => {
            core.bump_step(node_depth + 1)?;
            core.bump_step(node_depth + 2)?;
            sel_component_ref(core.reg(slot), index).map(|_| ())
        }
    }
}

/// Borrows the operand's value (after [`operand_prep`] validated it).
fn operand_val<'v>(core: &'v EvalCore, chunk: &'v Chunk, op: Operand) -> &'v Value {
    match op {
        Operand::Temp(r) | Operand::Slot(r) => core.reg(r),
        Operand::SlotSel(slot, index) => {
            sel_component_ref(core.reg(slot), index).expect("validated by operand_prep")
        }
        Operand::Const(i) => &chunk.consts()[i as usize],
    }
}

/// Executes one block. Results are left in the block's result register; the
/// caller takes them.
pub(crate) fn run_block(
    core: &mut EvalCore,
    ctx: &VmCtx<'_>,
    chunk: &Chunk,
    block: BlockId,
    base: usize,
) -> Result<(), EvalError> {
    let code = chunk.block(block).code();
    let mut pc = 0usize;
    while pc < code.len() {
        match &code[pc] {
            Insn::LoadBool { dst, value, depth } => {
                core.bump_step(base + *depth as usize)?;
                core.set_reg(*dst, Value::Bool(*value));
            }
            Insn::LoadConst { dst, index, depth } => {
                core.bump_step(base + *depth as usize)?;
                core.set_reg(*dst, chunk.consts()[*index as usize].clone());
            }
            Insn::LoadEmptySet { dst, depth } => {
                core.bump_step(base + *depth as usize)?;
                core.set_reg(*dst, Value::empty_set());
            }
            Insn::LoadEmptyList { dst, depth } => {
                core.bump_step(base + *depth as usize)?;
                let dialect = &ctx.program.dialect;
                require_dialect(dialect, dialect.allow_lists, "emptylist")?;
                core.set_reg(*dst, Value::empty_list());
            }
            Insn::LoadNat { dst, index, depth } => {
                core.bump_step(base + *depth as usize)?;
                let dialect = &ctx.program.dialect;
                require_dialect(dialect, dialect.allow_nat, "nat constant")?;
                core.set_reg(*dst, Value::Nat(chunk.nats()[*index as usize].clone()));
            }
            Insn::Copy { dst, src, depth } => {
                core.bump_step(base + *depth as usize)?;
                let v = core.reg(*src).clone();
                core.set_reg(*dst, v);
            }
            Insn::Take { dst, src, depth } => {
                core.bump_step(base + *depth as usize)?;
                let v = core.take_reg(*src);
                core.set_reg(*dst, v);
            }
            Insn::FailUnbound { name, depth } => {
                core.bump_step(base + *depth as usize)?;
                return Err(EvalError::UnboundVariable(
                    chunk.names()[*name as usize].clone(),
                ));
            }
            Insn::FailUnknownCall { name, depth } => {
                core.bump_step(base + *depth as usize)?;
                return Err(EvalError::UnknownFunction(
                    chunk.names()[*name as usize].clone(),
                ));
            }
            Insn::FailArity { def, nargs, depth } => {
                core.bump_step(base + *depth as usize)?;
                let callee = &ctx.program.defs()[*def as usize];
                return Err(EvalError::Shape {
                    operator: "call",
                    expected: "matching argument count",
                    found: format!(
                        "{}: {} parameter(s), {} argument(s)",
                        ctx.program.def_name(callee),
                        callee.params.len(),
                        nargs
                    ),
                });
            }
            Insn::Bump { depth } => core.bump_step(base + *depth as usize)?,
            Insn::Guard { op, name, depth } => {
                core.bump_step(base + *depth as usize)?;
                let dialect = &ctx.program.dialect;
                let allowed = match op {
                    DialectOp::New => dialect.allow_new,
                    DialectOp::Lists => dialect.allow_lists,
                    DialectOp::Nat => dialect.allow_nat,
                    DialectOp::NatAdd => dialect.allow_nat_add,
                    DialectOp::NatMul => dialect.allow_nat_mul,
                };
                require_dialect(dialect, allowed, name)?;
            }
            Insn::Branch {
                cond,
                else_to,
                depth,
            } => {
                core.bump_step(base + *depth as usize)?;
                match core.reg(*cond) {
                    Value::Bool(true) => {}
                    Value::Bool(false) => {
                        pc = *else_to as usize;
                        continue;
                    }
                    other => {
                        return Err(EvalError::Shape {
                            operator: "if",
                            expected: "a boolean condition",
                            found: other.to_string(),
                        })
                    }
                }
            }
            Insn::Jump { to } => {
                pc = *to as usize;
                continue;
            }
            Insn::MakeTuple {
                dst,
                start,
                len,
                depth,
            } => {
                core.bump_step(base + *depth as usize)?;
                core.charge_allocation(1)?;
                let mut out = Vec::with_capacity(*len as usize);
                for i in 0..*len {
                    out.push(core.take_reg(*start + i));
                }
                core.set_reg(*dst, Value::Tuple(Arc::from(out)));
            }
            Insn::Sel {
                dst,
                index,
                op,
                depth,
            } => {
                let d = base + *depth as usize;
                core.bump_step(d)?;
                operand_prep(core, *op, d)?;
                let v = sel_component_ref(operand_val(core, chunk, *op), *index)?.clone();
                core.set_reg(*dst, v);
            }
            Insn::Cmp {
                dst,
                a,
                b,
                leq,
                depth,
            } => {
                let d = base + *depth as usize;
                core.bump_step(d)?;
                operand_prep(core, *a, d)?;
                operand_prep(core, *b, d)?;
                let va = operand_val(core, chunk, *a);
                let vb = operand_val(core, chunk, *b);
                let result = if *leq { va <= vb } else { va == vb };
                core.set_reg(*dst, Value::Bool(result));
            }
            Insn::Insert {
                dst,
                elem,
                set,
                spine,
                depth,
            } => {
                core.bump_step(base + *depth as usize)?;
                let v = core.take_reg(*elem);
                let s = core.take_reg(*set);
                let (grown, novel, weight) = core.insert_value(v, s)?;
                if *spine && novel {
                    core.spine_delta = core.spine_delta.saturating_add(weight);
                }
                core.set_reg(*dst, grown);
            }
            Insn::Choose { dst, op, depth } => {
                let d = base + *depth as usize;
                core.bump_step(d)?;
                operand_prep(core, *op, d)?;
                let v = choose_min(operand_val(core, chunk, *op))?;
                core.set_reg(*dst, v);
            }
            Insn::Rest { dst, src, depth } => {
                core.bump_step(base + *depth as usize)?;
                let v = rest_value(core.take_reg(*src))?;
                core.set_reg(*dst, v);
            }
            Insn::Cons { dst, elem, list } => {
                let v = core.take_reg(*elem);
                let l = core.take_reg(*list);
                let grown = core.cons_value(v, l)?;
                core.set_reg(*dst, grown);
            }
            Insn::Head { dst, src } => {
                let v = head_value(core.take_reg(*src))?;
                core.set_reg(*dst, v);
            }
            Insn::Tail { dst, src } => {
                let v = tail_value(core.take_reg(*src))?;
                core.set_reg(*dst, v);
            }
            Insn::New { dst, src } => {
                let v = core.take_reg(*src);
                core.stats.new_values += 1;
                core.set_reg(*dst, Value::Atom(Atom::new(next_fresh_index(&v))));
            }
            Insn::Succ { dst, src } => match core.take_reg(*src) {
                Value::Nat(n) => {
                    core.check_nat_width(n.bit_len() + 1)?;
                    core.set_reg(*dst, Value::Nat(n.succ()));
                }
                other => {
                    return Err(EvalError::Shape {
                        operator: "succ",
                        expected: "a natural number",
                        found: other.to_string(),
                    })
                }
            },
            Insn::CheckNat { src, op } => {
                if !matches!(core.reg(*src), Value::Nat(_)) {
                    return Err(EvalError::Shape {
                        operator: op,
                        expected: "a natural number",
                        found: core.reg(*src).to_string(),
                    });
                }
            }
            Insn::NatAdd { dst, a, b } => {
                let (na, nb) = take_nats(core, *a, *b, "+")?;
                core.check_nat_width(na.bit_len().max(nb.bit_len()) + 1)?;
                core.set_reg(*dst, Value::Nat(na.add(&nb)));
            }
            Insn::NatMul { dst, a, b } => {
                let (na, nb) = take_nats(core, *a, *b, "*")?;
                core.check_nat_width(na.bit_len() + nb.bit_len())?;
                core.set_reg(*dst, Value::Nat(na.mul(&nb)));
            }
            Insn::Call {
                dst,
                def,
                args,
                nargs,
                depth,
            } => {
                core.bump_step(base + *depth as usize)?;
                let entry = ctx.pchunk.defs()[*def as usize];
                let saved_base = core.frame_base;
                let new_base = core.locals.len();
                for i in 0..*nargs {
                    let v = core.take_reg(*args + i);
                    core.locals.push(v);
                }
                core.frame_base = new_base;
                pad_frame(core, entry.frame_size);
                let result = run_block(
                    core,
                    ctx,
                    ctx.pchunk,
                    entry.block,
                    base + *depth as usize + 1,
                )
                .map(|()| core.take_reg(ctx.pchunk.block(entry.block).result()));
                core.locals.truncate(new_base);
                core.frame_base = saved_base;
                core.set_reg(*dst, result?);
            }
            Insn::Reduce(r) => run_reduce(core, ctx, chunk, r, base)?,
        }
        pc += 1;
    }
    Ok(())
}

fn take_nats(
    core: &mut EvalCore,
    a: u16,
    b: u16,
    op: &'static str,
) -> Result<(crate::bignat::BigNat, crate::bignat::BigNat), EvalError> {
    let na = match core.take_reg(a) {
        Value::Nat(n) => n,
        other => {
            return Err(EvalError::Shape {
                operator: op,
                expected: "a natural number",
                found: other.to_string(),
            })
        }
    };
    let nb = match core.take_reg(b) {
        Value::Nat(n) => n,
        other => {
            return Err(EvalError::Shape {
                operator: op,
                expected: "a natural number",
                found: other.to_string(),
            })
        }
    };
    Ok((na, nb))
}

/// Runs one app-lambda application: element and extra into the parameter
/// slots, the block, and the applied value out of the result register.
#[allow(clippy::too_many_arguments)]
pub(crate) fn apply_app(
    core: &mut EvalCore,
    ctx: &VmCtx<'_>,
    chunk: &Chunk,
    app: BlockId,
    x: u16,
    elem: Value,
    extra: &Value,
    lambda_base: usize,
) -> Result<Value, EvalError> {
    core.set_reg(x, elem);
    core.set_reg(x + 1, extra.clone());
    run_block(core, ctx, chunk, app, lambda_base)?;
    Ok(core.take_reg(chunk.block(app).result()))
}

// ---------------------------------------------------------------------------
// Per-element fold bodies, shared verbatim by the sequential loops below and
// the shard workers in `crate::parallel`. One implementation per fused kind
// is what makes the thread axis a pure execution-strategy change: a shard
// worker charges exactly the step/depth/insert/allocation sequence the
// sequential loop charges for the same element, so summing worker statistics
// in shard order reproduces the sequential totals byte-for-byte.
// ---------------------------------------------------------------------------

/// One `BoolAcc` iteration: the app block, the fused `if`-accumulator
/// charges, and the boolean shape check. Returns whether the predicate hit.
#[allow(clippy::too_many_arguments)]
pub(crate) fn boolacc_element(
    core: &mut EvalCore,
    ctx: &VmCtx<'_>,
    chunk: &Chunk,
    app: BlockId,
    x: u16,
    elem: Value,
    extra: &Value,
    lambda_base: usize,
    d: usize,
) -> Result<bool, EvalError> {
    core.note_iteration()?;
    let applied = apply_app(core, ctx, chunk, app, x, elem, extra, lambda_base)?;
    // if at d+2, condition slot read at d+3 …
    core.bump_batch(2, d + 3)?;
    let hit = match &applied {
        Value::Bool(b) => *b,
        other => {
            return Err(EvalError::Shape {
                operator: "if",
                expected: "a boolean condition",
                found: other.to_string(),
            })
        }
    };
    // … then the taken branch (boolean literal or accumulator read), one
    // step either way.
    core.bump_batch(1, d + 3)?;
    Ok(hit)
}

/// One `InsertApp` iteration up to (not including) the accumulator insert:
/// the app block plus the fused insert-body charges. The caller feeds the
/// returned value to [`EvalCore::insert_value`] on its accumulator.
#[allow(clippy::too_many_arguments)]
pub(crate) fn insertapp_element(
    core: &mut EvalCore,
    ctx: &VmCtx<'_>,
    chunk: &Chunk,
    app: BlockId,
    x: u16,
    elem: Value,
    extra: &Value,
    lambda_base: usize,
    d: usize,
) -> Result<Value, EvalError> {
    core.note_iteration()?;
    let applied = apply_app(core, ctx, chunk, app, x, elem, extra, lambda_base)?;
    // insert at d+2, two slot reads at d+3.
    core.bump_batch(3, d + 3)?;
    Ok(applied)
}

/// One `Filter` iteration up to the accumulator insert: app block, flag
/// charges and shape checks, and — when the element is kept — the selected
/// value (the caller inserts it). `None` means the element was dropped.
#[allow(clippy::too_many_arguments)]
pub(crate) fn filter_element(
    core: &mut EvalCore,
    ctx: &VmCtx<'_>,
    chunk: &Chunk,
    app: BlockId,
    keep_on_true: bool,
    cond_index: usize,
    value_index: usize,
    x: u16,
    elem: Value,
    extra: &Value,
    lambda_base: usize,
    d: usize,
) -> Result<Option<Value>, EvalError> {
    core.note_iteration()?;
    let applied = apply_app(core, ctx, chunk, app, x, elem, extra, lambda_base)?;
    // if at d+2, flag selector at d+3, its slot read at d+4.
    core.bump_batch(3, d + 4)?;
    let flag = match sel_component_ref(&applied, cond_index)? {
        Value::Bool(b) => *b,
        other => {
            return Err(EvalError::Shape {
                operator: "if",
                expected: "a boolean condition",
                found: other.to_string(),
            })
        }
    };
    if flag == keep_on_true {
        // insert at d+3, value selector at d+4, its slot read at d+5 …
        core.bump_batch(3, d + 5)?;
        let v = sel_component_ref(&applied, value_index)?.clone();
        // … then the accumulator slot read at d+4.
        core.bump_batch(1, d + 4)?;
        Ok(Some(v))
    } else {
        // The untaken branch reads the accumulator slot at d+3.
        core.bump_batch(1, d + 3)?;
        Ok(None)
    }
}

/// One `Monotone` iteration: the app block, then the acc block applied to
/// `(applied, accumulator)`. Returns the grown accumulator and the weight
/// sum of the iteration's novel spine inserts (novelty relative to *this*
/// core's accumulator — shard workers recompute global novelty at merge).
#[allow(clippy::too_many_arguments)]
pub(crate) fn monotone_element(
    core: &mut EvalCore,
    ctx: &VmCtx<'_>,
    chunk: &Chunk,
    app: BlockId,
    acc: BlockId,
    x: u16,
    elem: Value,
    extra: &Value,
    lambda_base: usize,
    accumulator: Value,
) -> Result<(Value, usize), EvalError> {
    core.note_iteration()?;
    let applied = apply_app(core, ctx, chunk, app, x, elem, extra, lambda_base)?;
    core.set_reg(x, applied);
    core.set_reg(x + 1, accumulator);
    // The spine inserts report their novel weights through spine_delta;
    // save/restore keeps nested monotone folds in the app block from
    // clobbering this fold's window.
    let saved = core.spine_delta;
    core.spine_delta = 0;
    let run = run_block(core, ctx, chunk, acc, lambda_base);
    let delta = core.spine_delta;
    core.spine_delta = saved;
    run?;
    Ok((core.take_reg(chunk.block(acc).result()), delta))
}

/// One `Generic` iteration: the app block, then the acc block applied to
/// `(applied, accumulator)`. Returns the new accumulator. The caller owns
/// the per-iteration accumulator-weight walk: the sequential loop notes
/// `weight_capped` after every element, while shard workers (which only see
/// summary-proved spine folds, whose weight trajectory is monotone) skip it
/// and let the merge reconstruct the same maximum from novel weights.
#[allow(clippy::too_many_arguments)]
pub(crate) fn generic_element(
    core: &mut EvalCore,
    ctx: &VmCtx<'_>,
    chunk: &Chunk,
    app: BlockId,
    acc: BlockId,
    x: u16,
    elem: Value,
    extra: &Value,
    lambda_base: usize,
    accumulator: Value,
) -> Result<Value, EvalError> {
    core.note_iteration()?;
    let applied = apply_app(core, ctx, chunk, app, x, elem, extra, lambda_base)?;
    core.set_reg(x, applied);
    core.set_reg(x + 1, accumulator);
    run_block(core, ctx, chunk, acc, lambda_base)?;
    Ok(core.take_reg(chunk.block(acc).result()))
}

fn run_reduce(
    core: &mut EvalCore,
    ctx: &VmCtx<'_>,
    chunk: &Chunk,
    r: &ReduceInsn,
    base: usize,
) -> Result<(), EvalError> {
    let d = base + r.depth as usize;
    if !r.is_list {
        // The list form's step (and dialect check) was pre-charged by its
        // Guard instruction.
        core.bump_step(d)?;
    }
    let set_v = core.take_reg(r.set);
    let mut base_v = core.take_reg(r.base);
    let extra_v = core.take_reg(r.extra);
    let x = r.x_slot;
    // Lambda bodies run two levels below the reduce node: apply() at d+1,
    // the body at d+2 — block offsets are relative to the body root.
    let lb = d + 2;

    if r.is_list {
        let items = match set_v {
            Value::List(items) => items,
            other => {
                return Err(EvalError::Shape {
                    operator: "list-reduce",
                    expected: "a list as first argument",
                    found: other.to_string(),
                })
            }
        };
        let (app, acc) = match &r.kind {
            ReduceKind::Generic { app, acc } => (*app, *acc),
            other => unreachable!("list folds compile to Generic, got {other:?}"),
        };
        let result = generic_fold(
            core,
            ctx,
            chunk,
            app,
            acc,
            x,
            items.iter().cloned(),
            base_v,
            &extra_v,
            lb,
        )?;
        core.set_reg(r.dst, result);
        return Ok(());
    }

    let items = match set_v {
        Value::Set(items) => items,
        other => {
            return Err(EvalError::Shape {
                operator: "set-reduce",
                expected: "a set as first argument",
                found: other.to_string(),
            })
        }
    };
    let n = items.len();

    // Static tier pre-promotion: when codegen proved the fold's result is a
    // `set(atom)` (or a fixed-arity atom-tuple set) and the base is the
    // empty generic set, start the accumulator on the matching columnar
    // tier so inserts stay u32-columnar from the first element.
    // Stats-neutral: all representations of the empty set weigh zero and
    // charge nothing. A wrong (advisory) stamp only costs the fast path —
    // the first non-conforming insert demotes in place.
    match r.acc_tier {
        SetTier::Atom => {
            if let Value::Set(b) = &base_v {
                if b.is_empty() && !b.is_columnar() {
                    base_v = Value::Set(Arc::new(crate::setrepr::SetRepr::new_atoms()));
                }
            }
        }
        SetTier::Tuple { arity } => {
            if let Value::Set(b) = &base_v {
                if b.is_empty() && !b.is_columnar() {
                    base_v =
                        Value::Set(Arc::new(crate::setrepr::SetRepr::new_rows(arity as usize)));
                }
            }
        }
        SetTier::Generic => {}
    }

    // Proper-hom folds with enough per-element work shard across the worker
    // pool; `try_run` declines (returning `None`) whenever sequential
    // execution is the right strategy, and the sequential arms below remain
    // the single source of truth for what one iteration charges (the shard
    // workers run the same per-element helpers).
    if let Some(result) =
        crate::parallel::try_run(core, ctx, chunk, r, d, &items, &base_v, &extra_v)
    {
        let result = result?;
        core.record_tier_engagement(&items, &result);
        core.set_reg(r.dst, result);
        return Ok(());
    }

    let result = match &r.kind {
        ReduceKind::Generic { app, acc } => generic_fold(
            core,
            ctx,
            chunk,
            *app,
            *acc,
            x,
            items.iter(),
            base_v,
            &extra_v,
            lb,
        )?,
        ReduceKind::Member => {
            // Per element: app `x = y` is 3 steps (Eq at d+2, two slot reads
            // at d+3), acc `or` is 3 steps (if at d+2, cond at d+3, taken
            // branch at d+3) — value-independent, so the whole scan batches
            // and the hit test is one binary search.
            if n == 0 {
                base_v
            } else {
                core.stats.reduce_iterations += n as u64;
                core.bump_batch(6 * n as u64, d + 3)?;
                let w0 = weight_capped(&base_v, ACCUMULATOR_WEIGHT_CAP);
                // Tier-aware membership: a binary search on the sorted
                // tiers, one word probe on the dense bitset tier.
                if items.contains(&extra_v) {
                    if items.first().is_some_and(|m| m == extra_v) {
                        // Hit on the first element: the accumulator is a
                        // boolean after every iteration.
                        core.note_accumulator_weight(1);
                    } else {
                        core.note_accumulator_weight(w0.max(1));
                    }
                    Value::Bool(true)
                } else {
                    core.note_accumulator_weight(w0);
                    base_v
                }
            }
        }
        ReduceKind::Union => {
            if n == 0 {
                base_v
            } else {
                let w0 = weight_capped(&base_v, ACCUMULATOR_WEIGHT_CAP);
                match base_v {
                    Value::Set(b) => {
                        // Per element: identity app is 1 step at d+2, the
                        // insert body 3 steps (insert at d+2, two slot reads
                        // at d+3); each insert charges the element's weight.
                        core.stats.reduce_iterations += n as u64;
                        core.bump_batch(4 * n as u64, d + 3)?;
                        core.stats.inserts += n as u64;
                        // Per-element weight and novelty charges without
                        // materialising values: columnar operands walk id
                        // space (O(1)-word novelty when the accumulator is
                        // dense), generic ones the same cursor merge as the
                        // old two-pointer scan.
                        let mut charged = 0usize;
                        let mut acc_w = w0;
                        b.for_each_novelty(&items, |w, novel| {
                            charged = charged.saturating_add(w);
                            if novel {
                                acc_w = cap_add(acc_w, w);
                            }
                        });
                        core.charge_allocation(charged)?;
                        core.note_accumulator_weight(capped(acc_w));
                        // One bulk sorted merge; ties keep the accumulator's
                        // copy, exactly like the insert fold.
                        Value::Set(Arc::new(b.merge_union(&items)))
                    }
                    other => {
                        // First iteration, replayed: the identity app, then
                        // the insert body's steps, then its shape error.
                        core.note_iteration()?;
                        core.bump_batch(4, d + 3)?;
                        return Err(EvalError::Shape {
                            operator: "insert",
                            expected: "a set as second argument",
                            found: other.to_string(),
                        });
                    }
                }
            }
        }
        ReduceKind::InsertApp { app } => {
            // The accumulator is held by the loop, never cloned back into a
            // slot, so after the first copy-on-write every insert is in
            // place; a non-set base fails at the first iteration's insert,
            // exactly like the tree-walk.
            let mut acc = base_v;
            let mut acc_w = weight_capped(&acc, ACCUMULATOR_WEIGHT_CAP);
            for elem in items.iter() {
                let applied = insertapp_element(core, ctx, chunk, *app, x, elem, &extra_v, lb, d)?;
                let (grown, novel, w) = core.insert_value(applied, acc)?;
                acc = grown;
                if novel {
                    acc_w = cap_add(acc_w, w);
                }
                core.note_accumulator_weight(capped(acc_w));
            }
            core.clear_lambda_slots(x);
            acc
        }
        ReduceKind::Filter {
            app,
            keep_on_true,
            cond_index,
            value_index,
        } => {
            let mut acc = base_v;
            let mut acc_w = weight_capped(&acc, ACCUMULATOR_WEIGHT_CAP);
            for elem in items.iter() {
                let kept = filter_element(
                    core,
                    ctx,
                    chunk,
                    *app,
                    *keep_on_true,
                    *cond_index,
                    *value_index,
                    x,
                    elem,
                    &extra_v,
                    lb,
                    d,
                )?;
                if let Some(v) = kept {
                    let (grown, novel, w) = core.insert_value(v, acc)?;
                    acc = grown;
                    if novel {
                        acc_w = cap_add(acc_w, w);
                    }
                }
                core.note_accumulator_weight(capped(acc_w));
            }
            core.clear_lambda_slots(x);
            acc
        }
        ReduceKind::Scan {
            app,
            cond_index,
            value_index,
        } => {
            let mut acc = base_v;
            for elem in items.iter() {
                core.note_iteration()?;
                let applied = apply_app(core, ctx, chunk, *app, x, elem, &extra_v, lb)?;
                core.bump_batch(3, d + 4)?;
                let flag = match sel_component_ref(&applied, *cond_index)? {
                    Value::Bool(b) => *b,
                    other => {
                        return Err(EvalError::Shape {
                            operator: "if",
                            expected: "a boolean condition",
                            found: other.to_string(),
                        })
                    }
                };
                if flag {
                    // value selector at d+3, its slot read at d+4.
                    core.bump_batch(2, d + 4)?;
                    acc = sel_component_ref(&applied, *value_index)?.clone();
                } else {
                    core.bump_batch(1, d + 3)?;
                }
                // The scan accumulator is not monotone: walk it like the
                // tree-walk does (it is small in every scan-shaped program).
                let w = weight_capped(&acc, ACCUMULATOR_WEIGHT_CAP);
                core.note_accumulator_weight(w);
            }
            core.clear_lambda_slots(x);
            acc
        }
        ReduceKind::BoolAcc { app, is_or } => {
            let w0 = weight_capped(&base_v, ACCUMULATOR_WEIGHT_CAP);
            let mut acc = base_v;
            let mut w_now = w0;
            for elem in items.iter() {
                let hit = boolacc_element(core, ctx, chunk, *app, x, elem, &extra_v, lb, d)?;
                if *is_or {
                    if hit {
                        acc = Value::Bool(true);
                        w_now = 1;
                    }
                } else if !hit {
                    acc = Value::Bool(false);
                    w_now = 1;
                }
                core.note_accumulator_weight(w_now);
            }
            core.clear_lambda_slots(x);
            acc
        }
        ReduceKind::Monotone { app, acc } => {
            let mut accumulator = base_v;
            let mut acc_w = weight_capped(&accumulator, ACCUMULATOR_WEIGHT_CAP);
            for elem in items.iter() {
                let (grown, delta) = monotone_element(
                    core,
                    ctx,
                    chunk,
                    *app,
                    *acc,
                    x,
                    elem,
                    &extra_v,
                    lb,
                    accumulator,
                )?;
                accumulator = grown;
                acc_w = cap_add(acc_w, delta);
                core.note_accumulator_weight(capped(acc_w));
            }
            core.clear_lambda_slots(x);
            accumulator
        }
    };
    // Diagnostic: a fold engaged the columnar tier when it traversed a
    // columnar set or produced one. Not part of `EvalStats` — values and
    // stats are tier-invariant; only this counter observes the tier.
    core.record_tier_engagement(&items, &result);
    core.set_reg(r.dst, result);
    Ok(())
}

/// The tree-walk reduce loop over blocks: both lambdas dispatched per
/// element, the accumulator weight walked per iteration.
#[allow(clippy::too_many_arguments)]
fn generic_fold(
    core: &mut EvalCore,
    ctx: &VmCtx<'_>,
    chunk: &Chunk,
    app: BlockId,
    acc: BlockId,
    x: u16,
    items: impl Iterator<Item = Value>,
    base_v: Value,
    extra_v: &Value,
    lambda_base: usize,
) -> Result<Value, EvalError> {
    let mut accumulator = base_v;
    for elem in items {
        accumulator = generic_element(
            core,
            ctx,
            chunk,
            app,
            acc,
            x,
            elem,
            extra_v,
            lambda_base,
            accumulator,
        )?;
        let w = weight_capped(&accumulator, ACCUMULATOR_WEIGHT_CAP);
        core.note_accumulator_weight(w);
    }
    core.clear_lambda_slots(x);
    Ok(accumulator)
}
