//! Fault-injection tests: drive the hardened recovery paths deterministically
//! through `srl_core::faultpoint` and prove the promises the module docs
//! make — a panicking shard worker becomes a structured `EvalError::Internal`
//! without killing the process or the pool, a deadline firing mid-fold
//! reports exact partial statistics, and an evaluator that failed answers
//! its next query byte-identically to a fresh one.
//!
//! The fault registry is process-global, so every test here serializes on
//! one mutex and disarms on entry and exit (a paired guard would also work,
//! but an explicit `disarm_all` at both ends keeps a panicking assertion
//! from poisoning the next test's registry view).

use std::sync::{Arc, Mutex, MutexGuard};

use srl_core::dsl::*;
use srl_core::{
    faultpoint, Env, EvalError, EvalLimits, EvalStats, Evaluator, ExecBackend, Program, Value,
};
use srl_integration_tests::atom_set;
use srl_stdlib::derived::map_set;

/// Pool width for the sharded runs (matches `par_differential.rs`).
const THREADS: usize = 4;

/// Serializes the tests in this binary around the process-global registry.
fn serialized() -> MutexGuard<'static, ()> {
    static GUARD: Mutex<()> = Mutex::new(());
    let guard = GUARD.lock().unwrap_or_else(|p| p.into_inner());
    faultpoint::disarm_all();
    guard
}

/// A projection fold over `n` pairs: proper-hom, `insert-app` class, with
/// enough static work per element that the pool shards it (the same
/// workload `par_differential.rs` uses to prove engagement).
fn projection(n: u64) -> (Program, srl_core::Expr, Env) {
    let program = Program::srl();
    let pairs = Value::set((0..n).map(|i| Value::tuple([Value::atom(i), Value::atom(i + n)])));
    let env = Env::new().bind("S", pairs);
    let expr = map_set(var("S"), lam("x", "t", sel(var("x"), 2)), empty_set());
    (program, expr, env)
}

/// A fresh evaluator over a shared compiled form.
fn evaluator(program: &Program, limits: EvalLimits, backend: ExecBackend) -> Evaluator {
    let compiled = Arc::new(program.compile());
    Evaluator::with_compiled(program, compiled, limits)
        .expect("compiled from this program")
        .with_backend(backend)
}

/// Runs `expr` on a fresh evaluator and returns the outcome with stats.
fn fresh_run(
    program: &Program,
    expr: &srl_core::Expr,
    env: &Env,
    limits: EvalLimits,
    backend: ExecBackend,
) -> Result<(Value, EvalStats), EvalError> {
    let mut ev = evaluator(program, limits, backend);
    let value = ev.eval(expr, env)?;
    Ok((value, *ev.stats()))
}

#[test]
fn worker_panic_becomes_internal_and_the_pool_stays_usable() {
    let _g = serialized();
    let (program, expr, env) = projection(1200);
    let mut ev = evaluator(
        &program,
        EvalLimits::benchmark(),
        ExecBackend::vm_with_threads(THREADS),
    );

    // Shard 1 of the sharded fold panics on entry. The panic output is
    // expected noise; silence the hook for the faulted run only.
    faultpoint::arm(faultpoint::WORKER_PANIC, 1);
    let hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));
    let err = ev.eval(&expr, &env).expect_err("shard 1 panics");
    std::panic::set_hook(hook);
    faultpoint::disarm_all();

    // The panic surfaces as a structured internal error naming the shard…
    match &err {
        EvalError::Internal { detail } => {
            assert!(detail.contains("shard 1"), "{detail}");
            assert!(detail.contains("worker_panic@shard_1"), "{detail}");
        }
        other => panic!("expected Internal, got {other:?}"),
    }
    assert_eq!(err.kind(), "internal");

    // …the failed run rolled its stats back…
    assert_eq!(*ev.stats(), EvalStats::default());

    // …and the same evaluator (and its worker pool) answers the next query
    // byte-identically to a fresh one.
    let retry = ev
        .eval(&expr, &env)
        .expect("pool is reusable after a panic");
    let (fresh_value, fresh_stats) = fresh_run(
        &program,
        &expr,
        &env,
        EvalLimits::benchmark(),
        ExecBackend::vm_with_threads(THREADS),
    )
    .expect("healthy workload");
    assert_eq!(retry, fresh_value);
    assert_eq!(*ev.stats(), fresh_stats, "stats drifted after recovery");
}

#[test]
fn worker_panic_cancels_the_sibling_shards() {
    let _g = serialized();
    // Sibling cancellation is best-effort, but the *verdict* must always be
    // the Internal error, never the Cancelled the panicking shard induced
    // in its siblings (the merge ranks Internal first).
    let (program, expr, env) = projection(4096);
    for shard in 0..2u64 {
        faultpoint::arm(faultpoint::WORKER_PANIC, shard);
        let hook = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));
        let err = evaluator(
            &program,
            EvalLimits::benchmark(),
            ExecBackend::vm_with_threads(THREADS),
        )
        .eval(&expr, &env)
        .expect_err("a shard panics");
        std::panic::set_hook(hook);
        faultpoint::disarm_all();
        assert!(
            matches!(err, EvalError::Internal { .. }),
            "shard {shard}: got {err:?}"
        );
    }
}

#[test]
fn deadline_mid_fold_reports_exact_partial_stats() {
    let _g = serialized();
    let (program, expr, env) = projection(1200);
    let limits = EvalLimits::benchmark().with_deadline_ms(3_600_000);
    let mut ev = evaluator(&program, limits, ExecBackend::vm());

    // The fault makes the 100th fold iteration behave as if the armed
    // wall-clock deadline expired — deterministic, unlike the clock.
    faultpoint::arm(faultpoint::DEADLINE_MID_FOLD, 100);
    let err = ev.eval(&expr, &env).expect_err("deadline fires mid-fold");
    faultpoint::disarm_all();

    assert_eq!(
        err,
        EvalError::DeadlineExceeded {
            limit_ms: 3_600_000
        }
    );
    assert_eq!(err.kind(), "deadline_exceeded");
    // Cumulative stats rolled back; the partial snapshot shows the fold
    // stopped at exactly the faulted iteration.
    assert_eq!(*ev.stats(), EvalStats::default());
    let partial = *ev.last_error_stats().expect("failed run leaves a snapshot");
    assert_eq!(partial.reduce_iterations, 100);
    assert!(partial.steps > 0);

    // The evaluator stays reusable and byte-identical to fresh.
    let retry = ev.eval(&expr, &env).expect("deadline was simulated only");
    let (fresh_value, fresh_stats) =
        fresh_run(&program, &expr, &env, limits, ExecBackend::vm()).expect("healthy workload");
    assert_eq!(retry, fresh_value);
    assert_eq!(*ev.stats(), fresh_stats);
    // The snapshot is diagnostics, documented to persist until the next
    // reset or failure — a later clean run must not erase it.
    assert_eq!(ev.last_error_stats(), Some(&partial));
    ev.reset_stats();
    assert_eq!(ev.last_error_stats(), None, "reset clears the snapshot");
}

#[test]
fn deadline_mid_fold_under_the_pool_is_still_a_deadline() {
    let _g = serialized();
    let (program, expr, env) = projection(1200);
    let limits = EvalLimits::benchmark().with_deadline_ms(3_600_000);
    faultpoint::arm(faultpoint::DEADLINE_MID_FOLD, 100);
    let err = evaluator(&program, limits, ExecBackend::vm_with_threads(THREADS))
        .eval(&expr, &env)
        .expect_err("deadline fires in some worker");
    faultpoint::disarm_all();
    // Which worker trips first is scheduling-dependent, but the verdict is
    // always DeadlineExceeded with the configured budget.
    assert_eq!(
        err,
        EvalError::DeadlineExceeded {
            limit_ms: 3_600_000
        }
    );
}

#[test]
fn merge_delay_changes_nothing_observable() {
    let _g = serialized();
    let (program, expr, env) = projection(1200);
    let baseline = fresh_run(
        &program,
        &expr,
        &env,
        EvalLimits::benchmark(),
        ExecBackend::vm_with_threads(THREADS),
    )
    .expect("healthy workload");
    faultpoint::arm(faultpoint::MERGE_DELAY, 10);
    let delayed = fresh_run(
        &program,
        &expr,
        &env,
        EvalLimits::benchmark(),
        ExecBackend::vm_with_threads(THREADS),
    )
    .expect("a slow merge is still a merge");
    faultpoint::disarm_all();
    assert_eq!(baseline, delayed, "merge timing leaked into the results");
}

#[test]
fn disarmed_registry_keeps_thread_counts_indistinguishable() {
    let _g = serialized();
    let (program, expr, env) = projection(1200);
    let seq = fresh_run(
        &program,
        &expr,
        &env,
        EvalLimits::benchmark(),
        ExecBackend::vm(),
    )
    .expect("sequential");
    let par = fresh_run(
        &program,
        &expr,
        &env,
        EvalLimits::benchmark(),
        ExecBackend::vm_with_threads(THREADS),
    )
    .expect("sharded");
    assert_eq!(seq, par, "threads must be invisible with no fault armed");
}

/// The reuse-after-error contract, satellite form: for each way a query can
/// be interrupted (step budget, size budget, simulated deadline) and each
/// backend (tree-walk, sequential VM, pooled VM), the evaluator that failed
/// must answer the next query with EvalStats byte-identical to a fresh
/// evaluator that never saw the failure.
#[test]
fn reuse_after_every_error_kind_matches_a_fresh_evaluator() {
    let _g = serialized();
    let (program, expr, env) = projection(1200);
    let healthy = EvalLimits::benchmark();
    let backends = [
        ExecBackend::TreeWalk,
        ExecBackend::vm(),
        ExecBackend::vm_with_threads(THREADS),
    ];

    // (label, starved limits to fail under, fault to arm)
    let step_starved = EvalLimits::benchmark().with_max_steps(50);
    let size_starved = EvalLimits::benchmark().with_max_value_weight(40);
    let cases: [(&str, EvalLimits, Option<u64>); 3] = [
        ("step limit", step_starved, None),
        ("size limit", size_starved, None),
        ("deadline", healthy.with_deadline_ms(3_600_000), Some(25)),
    ];

    for backend in backends {
        for (label, limits, fault) in &cases {
            let mut ev = evaluator(&program, *limits, backend);
            if let Some(k) = fault {
                faultpoint::arm(faultpoint::DEADLINE_MID_FOLD, *k);
            }
            let err = ev
                .eval(&expr, &env)
                .expect_err("starved or faulted run fails");
            faultpoint::disarm_all();
            match (*label, &err) {
                ("step limit", EvalError::StepLimitExceeded { .. })
                | ("size limit", EvalError::SizeLimitExceeded { .. })
                | ("deadline", EvalError::DeadlineExceeded { .. }) => {}
                other => panic!("{backend:?}/{label}: unexpected error {other:?}"),
            }
            assert!(
                ev.last_error_stats().is_some(),
                "{backend:?}/{label}: no partial snapshot"
            );

            // A small healthy query on the *same* evaluator. It still runs
            // under the starved limits, so keep it tiny.
            let small = Env::new().bind("S", atom_set(0..3));
            let probe = map_set(var("S"), lam("x", "t", var("x")), empty_set());
            let retried = ev.eval(&probe, &small).expect("tiny query fits any budget");
            let mut fresh = evaluator(&program, *limits, backend);
            let fresh_value = fresh.eval(&probe, &small).expect("tiny query");
            assert_eq!(retried, fresh_value, "{backend:?}/{label}: values differ");
            assert_eq!(
                ev.stats(),
                fresh.stats(),
                "{backend:?}/{label}: stats after recovery differ from fresh"
            );
        }
    }
}
