//! `SetRepr` — the backing store of [`Value::Set`]: inline for small sets, a
//! sorted vector with a slice window once it grows, and a **columnar tier**
//! below both when every element is a plain interned atom.
//!
//! The paper's cost model is driven by the set primitives (`choose`, `rest`,
//! `insert`, `set-reduce`), so the representation behind `Value::Set` is the
//! system's universal data structure. The original backing store was a
//! `BTreeSet<Value>`; profiling after the zero-copy refactor showed its node
//! churn dominating reduce-heavy workloads, and it was replaced by a sorted
//! `Vec<Value>`. This revision adds type-specialised tiers below the
//! vector, giving a five-point tier lattice:
//!
//! * **Inline small sets** (`inline`). Most accumulator sets in BASRL runs
//!   hold at most [`INLINE_CAP`] elements (bounded accumulators are the whole
//!   point of Theorem 4.13), so those live in a fixed inline array — no heap
//!   allocation for the element storage at all.
//! * **Sorted vector with a slice window** (`spilled`) for larger sets of
//!   arbitrary values: iteration walks contiguous memory; membership and
//!   `insert` are a binary search; `choose` is the first element of the live
//!   window, O(1); `rest` advances the window start, amortized O(1).
//! * **Columnar atom ids** (`atoms`): when every element is an *unnamed*
//!   atom with index ≤ `u32::MAX`, the set stores a sorted `Vec<u32>` of
//!   interned ids instead of `Vec<Value>` — 4 bytes per element instead of
//!   a full `Value`, id-space comparisons instead of `Ord` dispatch, and
//!   `memcpy`-speed bulk merges. The same drain window as `spilled` applies.
//! * **Dense bitset** (`bits`): an atoms set that is large
//!   (≥ [`BITS_MIN_LEN`]) and dense (max id < [`BITS_MAX_SPREAD`] × len)
//!   is stored as a bit vector — O(1)-word membership, word-parallel
//!   union/difference. This is the membership-heavy-fold mode for dense
//!   atom universes (alphabet-indexed unions).
//! * **Struct-of-arrays rows** (`rows`): when every element is a tuple of
//!   the *same* arity `k` whose components are all plain atoms, the set
//!   stores `k` parallel `Vec<u32>` columns sorted lexicographically by
//!   row. Lexicographic row order **is** the total `Value` order
//!   restricted to same-arity atom tuples (atoms compare by index, tuples
//!   by slice lexicographic comparison), so the columnar form is
//!   observationally identical. Membership narrows one column at a time
//!   (each binary search probes a contiguous `u32` slice); bulk merges
//!   run over row indices with the same galloping probe as the scalar
//!   tiers. This is the relation mode for transitive-closure and join
//!   accumulators.
//!
//! Selection is **adaptive at construction**: `FromIterator`, the merge ops
//! and clone re-tier through [`SetRepr::from_sorted_vec`], which promotes to
//! the columnar tier whenever every element qualifies; `insert` past the
//! inline cap promotes instead of spilling when it can. The bytecode
//! compiler additionally selects the tier **statically** (see
//! `srl-core/src/tier.rs`): folds whose element shape the type policy proves
//! to be `set(atom)` pre-promote their accumulators via
//! [`SetRepr::new_atoms`]. A thread-local toggle
//! ([`set_atom_tier_enabled`]) disables the columnar tier entirely so the
//! differential suites can pit the tiers against each other honestly.
//!
//! ## Widening is observationally free
//!
//! The columnar tiers are *lossless*: they only ever hold unnamed atoms
//! and tuples thereof (named atoms — equal to unnamed ones but displayed
//! differently — are rejected by [`plain_id`] and force the generic tier),
//! so reconstructing `Value::atom(id)` or an atom tuple round-trips
//! display, equality, order and hash exactly.
//! Inserting a value that does not fit the columnar invariant **widens** the
//! store back to the generic representation; since the element sequence is
//! unchanged, every observable — iteration order, `choose`/`rest`,
//! first-wins deduplication, and with them every `EvalStats` counter — is
//! identical across tiers. `tests/tests/set_tier_differential.rs` pins this
//! byte-for-byte across backends and thread counts.
//!
//! The bulk operations [`SetRepr::merge_union`] and
//! [`SetRepr::merge_sorted_difference`] are two-pointer merges over the
//! sorted representations, with a **galloping** (exponentially probing) fast
//! path when one operand is much smaller than the other, id-space merges
//! when both operands are columnar, and word-parallel bit ops when both are
//! dense.
//!
//! ## Invariants
//!
//! The live elements are strictly sorted ascending in the total [`Value`]
//! order and duplicate-free — inline: `slots[..len]`; spilled:
//! `items[start..]`; atoms: `ids[start..]`; rows: the rows `start..` of the
//! column family; bits: the set bits of `words`,
//! with `len` their popcount and `min` the lowest set bit. Dead slots hold
//! placeholders and are never observed: equality, ordering, hashing,
//! iteration and length all go through the live window. [`Clone`] compacts
//! and re-tiers — it copies only the live elements, back into the smallest
//! fitting tier.

use std::cell::Cell;
use std::cmp::Ordering;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::ops::Range;

use crate::value::Value;

/// Sets of up to this many elements are stored inline, without a heap
/// allocation for the element storage.
pub const INLINE_CAP: usize = 4;

/// Minimum cardinality before the dense bitset mode is considered.
pub const BITS_MIN_LEN: usize = 64;

/// Maximum spread (max id / cardinality) the bitset mode tolerates: a set
/// with `len` elements is stored dense only while its largest id stays
/// below `BITS_MAX_SPREAD * len`, i.e. at least 1-in-16 occupancy.
pub const BITS_MAX_SPREAD: usize = 16;

/// Galloping threshold for the bulk merges: the exponential probe engages
/// when `min(n, m) * GALLOP_SKEW < max(n, m)` (and the larger side is big
/// enough for the probe to pay for itself).
const GALLOP_SKEW: usize = 8;

/// Larger-side floor below which galloping is never worth the bookkeeping.
const GALLOP_MIN_LONG: usize = 64;

/// Placeholder stored in dead slots; never observed.
const PAD: Value = Value::Bool(false);

thread_local! {
    /// Per-thread columnar-tier switch, default **on**. Thread-local (not
    /// process-global) so differential tests toggling it off cannot race
    /// concurrently running tests on other threads; the parallel fold pool
    /// propagates the calling thread's value into its workers.
    static ATOM_TIER_ENABLED: Cell<bool> = const { Cell::new(true) };
}

/// True if newly built all-atom sets may use the columnar tier on this
/// thread.
pub fn atom_tier_enabled() -> bool {
    ATOM_TIER_ENABLED.with(Cell::get)
}

/// Enables/disables the columnar tier for sets built on this thread from
/// now on (existing sets are untouched — they widen lazily on clone or
/// merge). Returns the previous value so callers can restore it.
pub fn set_atom_tier_enabled(on: bool) -> bool {
    ATOM_TIER_ENABLED.with(|c| c.replace(on))
}

/// A finite set of [`Value`]s: inline array when small, sorted vector with a
/// slice window once spilled, sorted `u32` ids or a dense bitset when every
/// element is a plain atom.
///
/// Iteration order *is* the value order — exactly the order `set-reduce`
/// scans. See the module docs for the representation invariants.
pub struct SetRepr {
    store: Store,
}

/// The columnar tiers, as a classification for diagnostics: which storage
/// family a columnar set belongs to (see [`SetRepr::columnar_kind`] and the
/// per-tier engagement counters in `crate::eval`).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum ColumnarKind {
    /// Sorted `u32` atom ids.
    Atoms,
    /// Dense bitset over atom ids.
    Bits,
    /// Struct-of-arrays atom-tuple rows.
    Rows,
}

enum Store {
    /// `slots[..len]` live, sorted, duplicate-free; the rest is [`PAD`].
    Small { len: u8, slots: [Value; INLINE_CAP] },
    /// `items[start..]` live (`rest` advances `start` instead of shifting).
    Spilled { items: Vec<Value>, start: usize },
    /// Columnar: `ids[start..]` live, sorted, duplicate-free — every element
    /// is the unnamed atom of that index. Same drain window as `Spilled`.
    Atoms { ids: Vec<u32>, start: usize },
    /// Dense columnar: the set bits of `words` are the atom ids; `len` is
    /// their popcount, `min` the lowest set bit (0 when empty).
    Bits { words: Vec<u64>, len: u32, min: u32 },
    /// Struct-of-arrays: every element is an arity-`arity` tuple of plain
    /// atoms. Row `i` is `(cols[0][i], …, cols[arity-1][i])`; rows
    /// `start..` are live, sorted lexicographically (the total `Value`
    /// order restricted to same-arity atom tuples) and duplicate-free.
    /// `arity ≥ 1` and every column has the same length.
    Rows {
        arity: usize,
        cols: Vec<Vec<u32>>,
        start: usize,
    },
}

/// The atom id of `v` if it can live in a columnar store: an **unnamed**
/// atom with index ≤ `u32::MAX`. Named atoms are excluded — they compare
/// equal to unnamed ones but display differently, and the columnar store
/// could not reproduce the name.
fn plain_id(v: &Value) -> Option<u32> {
    match v {
        Value::Atom(a) if a.name.is_none() => u32::try_from(a.index).ok(),
        _ => None,
    }
}

/// The atom index of `v` regardless of name (for membership tests against
/// columnar stores, where equality ignores names).
fn atom_index_of(v: &Value) -> Option<u64> {
    v.as_atom().map(|a| a.index)
}

fn sorted_ids_of(items: &[Value]) -> Option<Vec<u32>> {
    let mut ids = Vec::with_capacity(items.len());
    for v in items {
        ids.push(plain_id(v)?);
    }
    Some(ids)
}

/// The component atom indices of `v` when it is a non-empty tuple whose
/// components are all atoms with `u32` indices — names ignored, so this is
/// the *membership* key against a row store (equality ignores names). The
/// second result is `true` when every component is unnamed, i.e. the tuple
/// can itself *live* in a row store.
fn row_key(v: &Value) -> Option<(Vec<u32>, bool)> {
    let items = v.as_tuple()?;
    if items.is_empty() {
        return None;
    }
    let mut ids = Vec::with_capacity(items.len());
    let mut plain = true;
    for c in items {
        match c {
            Value::Atom(a) => {
                ids.push(u32::try_from(a.index).ok()?);
                plain &= a.name.is_none();
            }
            _ => return None,
        }
    }
    Some((ids, plain))
}

/// Column vectors for an already-sorted, deduplicated slice of same-arity
/// all-plain-atom tuples; `None` if any element does not qualify.
fn sorted_cols_of(items: &[Value]) -> Option<(usize, Vec<Vec<u32>>)> {
    let arity = match items.first()?.as_tuple() {
        Some(ts) if !ts.is_empty() => ts.len(),
        _ => return None,
    };
    let mut cols = vec![Vec::with_capacity(items.len()); arity];
    for v in items {
        let ts = v.as_tuple().filter(|ts| ts.len() == arity)?;
        for (col, c) in cols.iter_mut().zip(ts) {
            col.push(plain_id(c)?);
        }
    }
    Some((arity, cols))
}

/// Lexicographic comparison of live row `i` of column family `a` against
/// row `j` of `b` (both arity-k). Same-arity atom tuples compare exactly
/// this way in the total `Value` order.
fn cmp_rows(a: &[Vec<u32>], i: usize, b: &[Vec<u32>], j: usize) -> Ordering {
    for (ca, cb) in a.iter().zip(b) {
        match ca[i].cmp(&cb[j]) {
            Ordering::Equal => continue,
            ord => return ord,
        }
    }
    Ordering::Equal
}

/// Locates the component ids `row` among the live rows of `cols` by
/// per-column narrowing: each column restricts the candidate range to rows
/// whose prefix matches, so every binary search probes one contiguous
/// `u32` slice. Returns the position relative to `start`, like
/// `binary_search`.
fn row_search(cols: &[Vec<u32>], start: usize, row: &[u32]) -> Result<usize, usize> {
    let n = cols[0].len() - start;
    let (mut lo, mut hi) = (0usize, n);
    for (col, &c) in cols.iter().zip(row) {
        let w = &col[start + lo..start + hi];
        let a = w.partition_point(|&x| x < c);
        let b = a + w[a..].partition_point(|&x| x == c);
        if a == b {
            return Err(lo + a);
        }
        hi = lo + b;
        lo += a;
    }
    Ok(lo)
}

/// First row of `a[lo..hi)` that is `>=` row `j` of `b`, relative to `lo`,
/// found by exponential probe + bisection — the row form of [`gallop_lt`].
/// Precondition: row `lo` of `a` is `<` row `j` of `b`.
fn gallop_rows_lt(a: &[Vec<u32>], lo: usize, hi: usize, b: &[Vec<u32>], j: usize) -> usize {
    let n = hi - lo;
    let mut probe = 1;
    while probe < n && cmp_rows(a, lo + probe, b, j) == Ordering::Less {
        probe <<= 1;
    }
    let (mut l, mut h) = (probe >> 1, probe.min(n));
    while l < h {
        let m = l + (h - l) / 2;
        if cmp_rows(a, lo + m, b, j) == Ordering::Less {
            l = m + 1;
        } else {
            h = m;
        }
    }
    l
}

/// Appends live rows `range` of `src` to the output column family.
fn extend_rows(out: &mut [Vec<u32>], src: &[Vec<u32>], range: Range<usize>) {
    for (o, s) in out.iter_mut().zip(src) {
        o.extend_from_slice(&s[range.clone()]);
    }
}

/// Union of two same-arity row families (live windows `sa..`/`sb..`) as a
/// galloping lexicographic merge over row indices — column slices move,
/// no `Value` is materialised. Equal rows keep `a`'s copy (both are plain
/// ids, so first-wins is invisible here, matching the scalar id merges).
fn union_rows(arity: usize, a: &[Vec<u32>], sa: usize, b: &[Vec<u32>], sb: usize) -> SetRepr {
    let (ea, eb) = (a[0].len(), b[0].len());
    let gallop = skewed(ea - sa, eb - sb);
    let mut cols = vec![Vec::with_capacity((ea - sa) + (eb - sb)); arity];
    let (mut i, mut j) = (sa, sb);
    while i < ea && j < eb {
        match cmp_rows(a, i, b, j) {
            Ordering::Less => {
                let run = if gallop {
                    gallop_rows_lt(a, i, ea, b, j)
                } else {
                    1
                };
                extend_rows(&mut cols, a, i..i + run);
                i += run;
            }
            Ordering::Greater => {
                let run = if gallop {
                    gallop_rows_lt(b, j, eb, a, i)
                } else {
                    1
                };
                extend_rows(&mut cols, b, j..j + run);
                j += run;
            }
            Ordering::Equal => {
                extend_rows(&mut cols, a, i..i + 1);
                i += 1;
                j += 1;
            }
        }
    }
    extend_rows(&mut cols, a, i..ea);
    extend_rows(&mut cols, b, j..eb);
    SetRepr::from_sorted_cols(arity, cols)
}

/// Difference `a \ b` of two same-arity row families, with the same
/// galloping runs as [`union_rows`].
fn diff_rows(arity: usize, a: &[Vec<u32>], sa: usize, b: &[Vec<u32>], sb: usize) -> SetRepr {
    let (ea, eb) = (a[0].len(), b[0].len());
    let gallop = skewed(ea - sa, eb - sb);
    let mut cols = vec![Vec::new(); arity];
    let (mut i, mut j) = (sa, sb);
    while i < ea && j < eb {
        match cmp_rows(a, i, b, j) {
            Ordering::Less => {
                let run = if gallop {
                    gallop_rows_lt(a, i, ea, b, j)
                } else {
                    1
                };
                extend_rows(&mut cols, a, i..i + run);
                i += run;
            }
            Ordering::Greater => {
                let run = if gallop {
                    gallop_rows_lt(b, j, eb, a, i)
                } else {
                    1
                };
                j += run;
            }
            Ordering::Equal => {
                i += 1;
                j += 1;
            }
        }
    }
    extend_rows(&mut cols, a, i..ea);
    SetRepr::from_sorted_cols(arity, cols)
}

/// Generic-tier store for an already-sorted, deduplicated vector.
fn store_from_sorted_values(items: Vec<Value>) -> Store {
    if items.len() <= INLINE_CAP {
        let mut slots = [PAD; INLINE_CAP];
        let len = items.len() as u8;
        for (slot, v) in slots.iter_mut().zip(items) {
            *slot = v;
        }
        Store::Small { len, slots }
    } else {
        Store::Spilled { items, start: 0 }
    }
}

fn bit_test(words: &[u64], id: u32) -> bool {
    let w = id as usize / 64;
    w < words.len() && (words[w] >> (id % 64)) & 1 == 1
}

/// Walks the set bits of a word slice in ascending order.
struct BitCursor<'a> {
    words: &'a [u64],
    wi: usize,
    cur: u64,
}

impl<'a> BitCursor<'a> {
    fn new(words: &'a [u64]) -> Self {
        BitCursor {
            words,
            wi: 0,
            cur: words.first().copied().unwrap_or(0),
        }
    }

    /// A cursor positioned past the first `skip` set bits (word-popcount
    /// skip, then per-bit within the landing word).
    fn skipped(words: &'a [u64], mut skip: usize) -> Self {
        let mut wi = 0;
        let mut cur = words.first().copied().unwrap_or(0);
        loop {
            let here = cur.count_ones() as usize;
            if here > skip {
                break;
            }
            skip -= here;
            wi += 1;
            if wi >= words.len() {
                cur = 0;
                wi = words.len().saturating_sub(1);
                break;
            }
            cur = words[wi];
        }
        for _ in 0..skip {
            cur &= cur - 1;
        }
        BitCursor { words, wi, cur }
    }

    fn next(&mut self) -> Option<u32> {
        loop {
            if self.cur != 0 {
                let b = self.cur.trailing_zeros();
                self.cur &= self.cur - 1;
                return Some((self.wi as u32) * 64 + b);
            }
            self.wi += 1;
            if self.wi >= self.words.len() {
                return None;
            }
            self.cur = self.words[self.wi];
        }
    }
}

/// The lowest set bit at or above `from`, if any.
fn next_set_bit(words: &[u64], from: u32) -> Option<u32> {
    let mut wi = from as usize / 64;
    if wi >= words.len() {
        return None;
    }
    let mut cur = words[wi] & (u64::MAX << (from % 64));
    loop {
        if cur != 0 {
            return Some((wi as u32) * 64 + cur.trailing_zeros());
        }
        wi += 1;
        if wi >= words.len() {
            return None;
        }
        cur = words[wi];
    }
}

/// A borrowed element of a set: a columnar atom id, a row of a columnar
/// relation, or a full value. The comparison glue lets the cursor merges
/// and lexicographic walks mix tiers without materialising `Value`s.
enum ElemRef<'a> {
    Id(u32),
    Row { cols: &'a [Vec<u32>], row: usize },
    Val(&'a Value),
}

impl ElemRef<'_> {
    fn weight(&self) -> usize {
        match self {
            ElemRef::Id(_) => 1,
            // An arity-k atom tuple weighs 1 + k (each component weighs 1).
            ElemRef::Row { cols, .. } => 1 + cols.len(),
            ElemRef::Val(v) => v.weight(),
        }
    }

    fn to_value(&self) -> Value {
        match self {
            ElemRef::Id(i) => Value::atom(*i as u64),
            ElemRef::Row { cols, row } => {
                Value::tuple(cols.iter().map(|c| Value::atom(c[*row] as u64)))
            }
            ElemRef::Val(v) => (*v).clone(),
        }
    }
}

/// How the unnamed atom `id` compares to `v` in the total value order
/// (booleans < atoms < everything else; atoms by index).
fn id_cmp_value(id: u32, v: &Value) -> Ordering {
    match v {
        Value::Bool(_) => Ordering::Greater,
        Value::Atom(a) => (id as u64).cmp(&a.index),
        _ => Ordering::Less,
    }
}

/// How live row `row` of `cols` compares to `v` in the total value order
/// (booleans < atoms < naturals < tuples < sets < lists; tuples compare
/// componentwise, then by length — slice semantics).
fn row_cmp_value(cols: &[Vec<u32>], row: usize, v: &Value) -> Ordering {
    match v {
        Value::Bool(_) | Value::Atom(_) | Value::Nat(_) => Ordering::Greater,
        Value::Tuple(items) => {
            for (col, c) in cols.iter().zip(items.iter()) {
                match id_cmp_value(col[row], c) {
                    Ordering::Equal => continue,
                    ord => return ord,
                }
            }
            cols.len().cmp(&items.len())
        }
        Value::Set(_) | Value::List(_) => Ordering::Less,
    }
}

fn cmp_elem(a: &ElemRef<'_>, b: &ElemRef<'_>) -> Ordering {
    match (a, b) {
        (ElemRef::Id(x), ElemRef::Id(y)) => x.cmp(y),
        (ElemRef::Id(x), ElemRef::Val(v)) => id_cmp_value(*x, v),
        (ElemRef::Val(v), ElemRef::Id(y)) => id_cmp_value(*y, v).reverse(),
        (ElemRef::Val(x), ElemRef::Val(y)) => x.cmp(y),
        // Atoms sort before tuples.
        (ElemRef::Id(_), ElemRef::Row { .. }) => Ordering::Less,
        (ElemRef::Row { .. }, ElemRef::Id(_)) => Ordering::Greater,
        // `cmp_rows` zips, so it compares the common prefix; equal prefixes
        // fall to the arity comparison (slice semantics).
        (ElemRef::Row { cols: a, row: i }, ElemRef::Row { cols: b, row: j }) => {
            match cmp_rows(a, *i, b, *j) {
                Ordering::Equal => a.len().cmp(&b.len()),
                ord => ord,
            }
        }
        (ElemRef::Row { cols, row }, ElemRef::Val(v)) => row_cmp_value(cols, *row, v),
        (ElemRef::Val(v), ElemRef::Row { cols, row }) => row_cmp_value(cols, *row, v).reverse(),
    }
}

/// Internal by-reference iterator over the live elements of any tier.
enum ElemIter<'a> {
    Vals(std::slice::Iter<'a, Value>),
    Ids(std::slice::Iter<'a, u32>),
    Bits(BitCursor<'a>),
    Rows {
        cols: &'a [Vec<u32>],
        row: usize,
        end: usize,
    },
}

impl<'a> Iterator for ElemIter<'a> {
    type Item = ElemRef<'a>;

    fn next(&mut self) -> Option<ElemRef<'a>> {
        match self {
            ElemIter::Vals(it) => it.next().map(ElemRef::Val),
            ElemIter::Ids(it) => it.next().map(|&i| ElemRef::Id(i)),
            ElemIter::Bits(c) => c.next().map(ElemRef::Id),
            ElemIter::Rows { cols, row, end } => {
                if row < end {
                    let r = *row;
                    *row += 1;
                    Some(ElemRef::Row { cols, row: r })
                } else {
                    None
                }
            }
        }
    }
}

/// Iterator over a set's elements in ascending value order, yielding
/// **owned** values. Columnar tiers materialise each atom on the fly (an
/// unnamed `Value::Atom` is two words, no allocation); value tiers clone —
/// an O(1) `Arc` bump for collection elements.
pub struct SetIter<'a> {
    inner: ElemIter<'a>,
    remaining: usize,
}

impl Iterator for SetIter<'_> {
    type Item = Value;

    fn next(&mut self) -> Option<Value> {
        if self.remaining == 0 {
            return None;
        }
        match self.inner.next() {
            Some(e) => {
                self.remaining -= 1;
                Some(e.to_value())
            }
            None => {
                self.remaining = 0;
                None
            }
        }
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        (self.remaining, Some(self.remaining))
    }
}

impl ExactSizeIterator for SetIter<'_> {}

/// A columnar view of one merge operand: a borrowed id slice, a dense word
/// slice, or (for an all-plain-atom inline set) a small id buffer lifted on
/// the fly.
enum ColView<'a> {
    Ids(&'a [u32]),
    Buf([u32; INLINE_CAP], usize),
    Bits(&'a [u64]),
}

impl ColView<'_> {
    fn id_slice(&self) -> Option<&[u32]> {
        match self {
            ColView::Ids(s) => Some(s),
            ColView::Buf(buf, n) => Some(&buf[..*n]),
            ColView::Bits(_) => None,
        }
    }

    fn bits(&self) -> Option<&[u64]> {
        match self {
            ColView::Bits(w) => Some(w),
            _ => None,
        }
    }
}

fn skewed(n: usize, m: usize) -> bool {
    n.max(m) >= GALLOP_MIN_LONG && n.min(m) * GALLOP_SKEW < n.max(m)
}

/// Index of the first element of `s` that is `>= bound`, found by an
/// exponential probe followed by a binary search within the bracketed run.
/// Precondition: `s[0] < bound` (so the result is ≥ 1 when `s` is
/// non-empty). O(log run) instead of O(run).
fn gallop_lt<T: Ord>(s: &[T], bound: &T) -> usize {
    let mut hi = 1;
    while hi < s.len() && s[hi] < *bound {
        hi <<= 1;
    }
    let lo = hi >> 1;
    let hi = hi.min(s.len());
    lo + s[lo..hi].partition_point(|x| x < bound)
}

/// Sorted-dedup union of two sorted-dedup slices; on equal elements `a`'s
/// copy wins. With `gallop`, runs from the side that is behind are located
/// by exponential probe and copied wholesale.
fn merge_union_sorted<T: Ord + Clone>(a: &[T], b: &[T], gallop: bool) -> Vec<T> {
    let mut out = Vec::with_capacity(a.len() + b.len());
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            Ordering::Less => {
                let run = if gallop { gallop_lt(&a[i..], &b[j]) } else { 1 };
                out.extend_from_slice(&a[i..i + run]);
                i += run;
            }
            Ordering::Greater => {
                let run = if gallop { gallop_lt(&b[j..], &a[i]) } else { 1 };
                out.extend_from_slice(&b[j..j + run]);
                j += run;
            }
            Ordering::Equal => {
                out.push(a[i].clone());
                i += 1;
                j += 1;
            }
        }
    }
    out.extend_from_slice(&a[i..]);
    out.extend_from_slice(&b[j..]);
    out
}

/// Sorted `a \ b` over sorted-dedup slices, with the same galloping runs.
fn merge_difference_sorted<T: Ord + Clone>(a: &[T], b: &[T], gallop: bool) -> Vec<T> {
    let mut out = Vec::new();
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            Ordering::Less => {
                let run = if gallop { gallop_lt(&a[i..], &b[j]) } else { 1 };
                out.extend_from_slice(&a[i..i + run]);
                i += run;
            }
            Ordering::Greater => {
                let run = if gallop { gallop_lt(&b[j..], &a[i]) } else { 1 };
                j += run;
            }
            Ordering::Equal => {
                i += 1;
                j += 1;
            }
        }
    }
    out.extend_from_slice(&a[i..]);
    out
}

/// Union of two columnar views in id space.
fn union_cols(a: &ColView<'_>, b: &ColView<'_>) -> SetRepr {
    match (a.id_slice(), b.id_slice()) {
        (Some(x), Some(y)) => {
            SetRepr::from_sorted_ids(merge_union_sorted(x, y, skewed(x.len(), y.len())))
        }
        (None, None) => {
            let (wa, wb) = (a.bits().unwrap(), b.bits().unwrap());
            let (long, short) = if wa.len() >= wb.len() {
                (wa, wb)
            } else {
                (wb, wa)
            };
            let mut words = long.to_vec();
            for (w, s) in words.iter_mut().zip(short.iter()) {
                *w |= s;
            }
            SetRepr::from_bits(words)
        }
        (Some(x), None) => bits_with_ids(b.bits().unwrap(), x),
        (None, Some(y)) => bits_with_ids(a.bits().unwrap(), y),
    }
}

/// Dense words ∪ an id slice (union is symmetric, so this covers both
/// mixed orientations — ids carry no names to lose).
fn bits_with_ids(words: &[u64], ids: &[u32]) -> SetRepr {
    let mut out = words.to_vec();
    if let Some(&max) = ids.last() {
        let need = max as usize / 64 + 1;
        if out.len() < need {
            out.resize(need, 0);
        }
    }
    for &id in ids {
        out[id as usize / 64] |= 1u64 << (id % 64);
    }
    SetRepr::from_bits(out)
}

/// Difference `a \ b` of two columnar views in id space.
fn diff_cols(a: &ColView<'_>, b: &ColView<'_>) -> SetRepr {
    match (a.id_slice(), b.id_slice()) {
        (Some(x), Some(y)) => {
            SetRepr::from_sorted_ids(merge_difference_sorted(x, y, skewed(x.len(), y.len())))
        }
        (Some(x), None) => {
            let wb = b.bits().unwrap();
            SetRepr::from_sorted_ids(x.iter().copied().filter(|&id| !bit_test(wb, id)).collect())
        }
        (None, Some(y)) => {
            let mut words = a.bits().unwrap().to_vec();
            for &id in y {
                let w = id as usize / 64;
                if w < words.len() {
                    words[w] &= !(1u64 << (id % 64));
                }
            }
            SetRepr::from_bits(words)
        }
        (None, None) => {
            let (wa, wb) = (a.bits().unwrap(), b.bits().unwrap());
            let mut words = wa.to_vec();
            for (w, s) in words.iter_mut().zip(wb.iter()) {
                *w &= !s;
            }
            SetRepr::from_bits(words)
        }
    }
}

/// Cursor-merge union across mixed tiers, in the total value order.
fn merge_union_elems(a: &SetRepr, b: &SetRepr) -> Vec<Value> {
    let mut out = Vec::with_capacity(a.len() + b.len());
    let mut x = a.elems().peekable();
    let mut y = b.elems().peekable();
    loop {
        let ord = match (x.peek(), y.peek()) {
            (Some(e), Some(f)) => cmp_elem(e, f),
            (Some(_), None) => Ordering::Less,
            (None, Some(_)) => Ordering::Greater,
            (None, None) => break,
        };
        match ord {
            Ordering::Less => out.push(x.next().unwrap().to_value()),
            Ordering::Greater => out.push(y.next().unwrap().to_value()),
            Ordering::Equal => {
                out.push(x.next().unwrap().to_value());
                y.next();
            }
        }
    }
    out
}

/// Cursor-merge difference `a \ b` across mixed tiers.
fn merge_difference_elems(a: &SetRepr, b: &SetRepr) -> Vec<Value> {
    let mut out = Vec::new();
    let mut x = a.elems().peekable();
    let mut y = b.elems().peekable();
    loop {
        let ord = match (x.peek(), y.peek()) {
            (Some(e), Some(f)) => cmp_elem(e, f),
            (Some(_), None) => Ordering::Less,
            (None, _) => break,
        };
        match ord {
            Ordering::Less => out.push(x.next().unwrap().to_value()),
            Ordering::Greater => {
                y.next();
            }
            Ordering::Equal => {
                x.next();
                y.next();
            }
        }
    }
    out
}

impl SetRepr {
    /// The empty set.
    pub fn new() -> Self {
        SetRepr {
            store: Store::Small {
                len: 0,
                slots: [PAD; INLINE_CAP],
            },
        }
    }

    /// An empty set pre-promoted to the columnar atom tier — used by the VM
    /// when the static tier analysis proves a fold accumulates `set(atom)`,
    /// so the ascending rebuild pushes `u32`s from the first insert. Falls
    /// back to the generic empty set when the tier is disabled; every
    /// operation tolerates a columnar store at or below the inline cap.
    pub fn new_atoms() -> Self {
        if atom_tier_enabled() {
            SetRepr {
                store: Store::Atoms {
                    ids: Vec::new(),
                    start: 0,
                },
            }
        } else {
            SetRepr::new()
        }
    }

    /// An empty set pre-promoted to the struct-of-arrays row tier for
    /// arity-`arity` atom tuples — the relation analogue of
    /// [`SetRepr::new_atoms`], used by the VM when the static tier analysis
    /// proves a fold accumulates `set(tuple(atom, …, atom))`. Falls back to
    /// the generic empty set when the tier is disabled (or for the empty
    /// tuple arity, which the row store excludes).
    pub fn new_rows(arity: usize) -> Self {
        if arity > 0 && atom_tier_enabled() {
            SetRepr {
                store: Store::Rows {
                    arity,
                    cols: vec![Vec::new(); arity],
                    start: 0,
                },
            }
        } else {
            SetRepr::new()
        }
    }

    /// Builds the set from an already-sorted, deduplicated vector (private:
    /// callers are the merge ops, `Clone` and `FromIterator`, which
    /// establish the invariant themselves). This is the adaptive tier
    /// selection point: all-plain-atom contents go columnar, same-arity
    /// all-atom-tuple contents go struct-of-arrays.
    fn from_sorted_vec(items: Vec<Value>) -> Self {
        if items.len() > INLINE_CAP && atom_tier_enabled() {
            if let Some(ids) = sorted_ids_of(&items) {
                return SetRepr::from_sorted_ids(ids);
            }
            if let Some((arity, cols)) = sorted_cols_of(&items) {
                return SetRepr {
                    store: Store::Rows {
                        arity,
                        cols,
                        start: 0,
                    },
                };
            }
        }
        SetRepr {
            store: store_from_sorted_values(items),
        }
    }

    /// Builds the set from sorted, deduplicated atom ids, picking between
    /// inline (small), dense bitset (large and dense) and sorted-id
    /// (everything else) — or materialising values when the tier is off.
    fn from_sorted_ids(ids: Vec<u32>) -> Self {
        if ids.len() <= INLINE_CAP || !atom_tier_enabled() {
            return SetRepr {
                store: store_from_sorted_values(
                    ids.into_iter().map(|i| Value::atom(i as u64)).collect(),
                ),
            };
        }
        if ids.len() >= BITS_MIN_LEN {
            let max = *ids.last().unwrap() as usize;
            if max < BITS_MAX_SPREAD * ids.len() {
                let mut words = vec![0u64; max / 64 + 1];
                for &id in &ids {
                    words[id as usize / 64] |= 1u64 << (id % 64);
                }
                return SetRepr {
                    store: Store::Bits {
                        words,
                        len: ids.len() as u32,
                        min: ids[0],
                    },
                };
            }
        }
        SetRepr {
            store: Store::Atoms { ids, start: 0 },
        }
    }

    /// Builds the set from a bit vector of atom ids, keeping the dense form
    /// only while it is still large and dense enough (the criteria mirror
    /// [`SetRepr::from_sorted_ids`], so the two never ping-pong).
    fn from_bits(mut words: Vec<u64>) -> Self {
        while words.last() == Some(&0) {
            words.pop();
        }
        let len: usize = words.iter().map(|w| w.count_ones() as usize).sum();
        if len == 0 {
            return SetRepr::new();
        }
        let max = {
            let w = words.last().unwrap();
            ((words.len() - 1) as u32) * 64 + (63 - w.leading_zeros())
        };
        if len > INLINE_CAP
            && atom_tier_enabled()
            && len >= BITS_MIN_LEN
            && (max as usize) < BITS_MAX_SPREAD * len
        {
            let min = BitCursor::new(&words).next().unwrap();
            return SetRepr {
                store: Store::Bits {
                    words,
                    len: len as u32,
                    min,
                },
            };
        }
        let mut ids = Vec::with_capacity(len);
        let mut c = BitCursor::new(&words);
        while let Some(id) = c.next() {
            ids.push(id);
        }
        SetRepr::from_sorted_ids(ids)
    }

    /// Builds the set from sorted, deduplicated row columns, materialising
    /// tuples when small or when the tier is off (mirroring
    /// [`SetRepr::from_sorted_ids`]).
    fn from_sorted_cols(arity: usize, cols: Vec<Vec<u32>>) -> Self {
        let n = cols[0].len();
        if n <= INLINE_CAP || !atom_tier_enabled() {
            let items: Vec<Value> = (0..n)
                .map(|i| Value::tuple(cols.iter().map(|c| Value::atom(c[i] as u64))))
                .collect();
            return SetRepr {
                store: store_from_sorted_values(items),
            };
        }
        SetRepr {
            store: Store::Rows {
                arity,
                cols,
                start: 0,
            },
        }
    }

    /// The live elements by reference, when this is a value-backed tier.
    /// Columnar tiers return `None` — callers inside the crate use this as
    /// the zero-copy fast path and fall back to [`SetRepr::iter`] (columnar
    /// element weights are covered by [`SetRepr::columnar_weight_sum`]).
    #[inline]
    pub(crate) fn value_slice(&self) -> Option<&[Value]> {
        match &self.store {
            Store::Small { len, slots } => Some(&slots[..*len as usize]),
            Store::Spilled { items, start } => Some(&items[*start..]),
            _ => None,
        }
    }

    /// The live id window, when this is the sorted-id tier.
    fn live_ids(&self) -> Option<&[u32]> {
        match &self.store {
            Store::Atoms { ids, start } => Some(&ids[*start..]),
            _ => None,
        }
    }

    /// Total weight of the live elements when a columnar tier knows it
    /// without walking: atoms weigh 1 each, arity-k rows weigh `1 + k`
    /// each. `None` for value-backed tiers (callers sum the slice).
    #[inline]
    pub(crate) fn columnar_weight_sum(&self) -> Option<usize> {
        match &self.store {
            Store::Atoms { .. } | Store::Bits { .. } => Some(self.len()),
            Store::Rows { arity, .. } => Some(self.len() * (1 + *arity)),
            _ => None,
        }
    }

    /// `Some(arity)` when the set is backed by the struct-of-arrays row
    /// tier — every element is then an arity-k tuple of plain atoms.
    #[inline]
    pub(crate) fn rows_arity(&self) -> Option<usize> {
        match &self.store {
            Store::Rows { arity, .. } => Some(*arity),
            _ => None,
        }
    }

    /// For columnar tiers: `Some(max_id)` (`Some(None)` when empty). `None`
    /// for value-backed tiers. Lets `new`-atom allocation scan sets without
    /// walking elements. Only the first row column is sorted, so the row
    /// tier scans the later columns (still a contiguous `u32` sweep, no
    /// `Value` materialisation).
    pub(crate) fn columnar_max_id(&self) -> Option<Option<u64>> {
        match &self.store {
            Store::Atoms { ids, start } => Some(ids[*start..].last().map(|&i| i as u64)),
            Store::Bits { words, len, .. } => {
                if *len == 0 {
                    return Some(None);
                }
                let w = words.last().unwrap();
                Some(Some(
                    ((words.len() - 1) as u64) * 64 + (63 - w.leading_zeros()) as u64,
                ))
            }
            Store::Rows { cols, start, .. } => {
                let Some(&first_max) = cols[0].last() else {
                    return Some(None);
                };
                if *start == cols[0].len() {
                    return Some(None);
                }
                let mut max = first_max;
                for col in &cols[1..] {
                    for &id in &col[*start..] {
                        max = max.max(id);
                    }
                }
                Some(Some(max as u64))
            }
            _ => None,
        }
    }

    /// True if the elements live in a columnar tier (atom ids, a dense
    /// bitset, or struct-of-arrays rows).
    #[inline]
    pub fn is_columnar(&self) -> bool {
        matches!(
            self.store,
            Store::Atoms { .. } | Store::Bits { .. } | Store::Rows { .. }
        )
    }

    /// The storage tier currently backing the set, for diagnostics.
    pub fn tier_label(&self) -> &'static str {
        match &self.store {
            Store::Small { .. } => "inline",
            Store::Spilled { .. } => "spilled",
            Store::Atoms { .. } => "atoms",
            Store::Bits { .. } => "bits",
            Store::Rows { .. } => "rows",
        }
    }

    /// Which columnar tier backs the set, or `None` for the generic slice
    /// tiers — the classification behind the per-tier engagement counters.
    pub(crate) fn columnar_kind(&self) -> Option<ColumnarKind> {
        match &self.store {
            Store::Atoms { .. } => Some(ColumnarKind::Atoms),
            Store::Bits { .. } => Some(ColumnarKind::Bits),
            Store::Rows { .. } => Some(ColumnarKind::Rows),
            Store::Small { .. } | Store::Spilled { .. } => None,
        }
    }

    fn elems(&self) -> ElemIter<'_> {
        match &self.store {
            Store::Small { len, slots } => ElemIter::Vals(slots[..*len as usize].iter()),
            Store::Spilled { items, start } => ElemIter::Vals(items[*start..].iter()),
            Store::Atoms { ids, start } => ElemIter::Ids(ids[*start..].iter()),
            Store::Bits { words, .. } => ElemIter::Bits(BitCursor::new(words)),
            Store::Rows { cols, start, .. } => ElemIter::Rows {
                cols,
                row: *start,
                end: cols[0].len(),
            },
        }
    }

    fn col_view(&self) -> Option<ColView<'_>> {
        match &self.store {
            Store::Atoms { ids, start } => Some(ColView::Ids(&ids[*start..])),
            Store::Bits { words, .. } => Some(ColView::Bits(words)),
            Store::Small { len, slots } => {
                let n = *len as usize;
                let mut buf = [0u32; INLINE_CAP];
                for (slot, v) in buf.iter_mut().zip(&slots[..n]) {
                    *slot = plain_id(v)?;
                }
                Some(ColView::Buf(buf, n))
            }
            Store::Spilled { .. } | Store::Rows { .. } => None,
        }
    }

    /// The live row columns, when this is the struct-of-arrays tier.
    fn rows_view(&self) -> Option<(usize, &[Vec<u32>], usize)> {
        match &self.store {
            Store::Rows { arity, cols, start } => Some((*arity, cols.as_slice(), *start)),
            _ => None,
        }
    }

    /// Number of elements.
    #[inline]
    pub fn len(&self) -> usize {
        match &self.store {
            Store::Small { len, .. } => *len as usize,
            Store::Spilled { items, start } => items.len() - start,
            Store::Atoms { ids, start } => ids.len() - start,
            Store::Bits { len, .. } => *len as usize,
            Store::Rows { cols, start, .. } => cols[0].len() - start,
        }
    }

    /// True if the set has no elements.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Iterates the elements in ascending value order, yielding owned
    /// values (columnar tiers materialise atoms on the fly).
    #[inline]
    pub fn iter(&self) -> SetIter<'_> {
        SetIter {
            remaining: self.len(),
            inner: self.elems(),
        }
    }

    /// Iterates the elements at positions `range` of the ascending order —
    /// the parallel pool's shard view. Value and id tiers slice the live
    /// window; the bitset tier skips by word popcount.
    pub fn iter_range(&self, range: Range<usize>) -> SetIter<'_> {
        debug_assert!(range.start <= range.end && range.end <= self.len());
        let remaining = range.end - range.start;
        let inner = match &self.store {
            Store::Small { len, slots } => ElemIter::Vals(slots[..*len as usize][range].iter()),
            Store::Spilled { items, start } => ElemIter::Vals(items[*start..][range].iter()),
            Store::Atoms { ids, start } => ElemIter::Ids(ids[*start..][range].iter()),
            Store::Bits { words, .. } => ElemIter::Bits(BitCursor::skipped(words, range.start)),
            Store::Rows { cols, start, .. } => ElemIter::Rows {
                cols,
                row: *start + range.start,
                end: *start + range.end,
            },
        };
        SetIter { inner, remaining }
    }

    /// The minimal element — the paper's `choose(S)` — if non-empty.
    /// Returned owned: columnar tiers have no `Value` to borrow (an
    /// unnamed atom is constructed in two words, no allocation).
    #[inline]
    pub fn first(&self) -> Option<Value> {
        match &self.store {
            Store::Small { len, slots } => slots[..*len as usize].first().cloned(),
            Store::Spilled { items, start } => items.get(*start).cloned(),
            Store::Atoms { ids, start } => ids.get(*start).map(|&i| Value::atom(i as u64)),
            Store::Bits { len, min, .. } => (*len > 0).then(|| Value::atom(*min as u64)),
            Store::Rows { cols, start, .. } => (*start < cols[0].len())
                .then(|| Value::tuple(cols.iter().map(|c| Value::atom(c[*start] as u64)))),
        }
    }

    /// Membership test: binary search on the sorted tiers, one word probe
    /// on the bitset tier, per-column narrowing on the row tier. Columnar
    /// tests compare by atom index (names do not participate in equality).
    pub fn contains(&self, value: &Value) -> bool {
        match &self.store {
            Store::Small { len, slots } => slots[..*len as usize].binary_search(value).is_ok(),
            Store::Spilled { items, start } => items[*start..].binary_search(value).is_ok(),
            Store::Atoms { ids, start } => match atom_index_of(value) {
                Some(ix) => {
                    u32::try_from(ix).is_ok_and(|id| ids[*start..].binary_search(&id).is_ok())
                }
                None => false,
            },
            Store::Bits { words, .. } => match atom_index_of(value) {
                Some(ix) => u32::try_from(ix).is_ok_and(|id| bit_test(words, id)),
                None => false,
            },
            Store::Rows { arity, cols, start } => match row_key(value) {
                Some((row, _)) if row.len() == *arity => row_search(cols, *start, &row).is_ok(),
                _ => false,
            },
        }
    }

    /// Inserts `value`, keeping the set sorted and duplicate-free. Returns
    /// `true` if the value was new. Like `BTreeSet::insert`, an equal
    /// element that is already present is **kept** (first-wins: equal
    /// values may still differ in display, e.g. named vs. unnamed atoms —
    /// which is also why columnar stores, which hold only unnamed atoms,
    /// answer named duplicates with `false` without widening). An inline
    /// set growing past the cap promotes to the columnar tier when every
    /// element qualifies, and spills to the vector otherwise; a columnar
    /// set receiving a value it cannot represent widens first.
    pub fn insert(&mut self, value: Value) -> bool {
        match &mut self.store {
            Store::Small { len, slots } => {
                let n = *len as usize;
                let pos = match slots[..n].binary_search(&value) {
                    Ok(_) => return false,
                    Err(pos) => pos,
                };
                if n < INLINE_CAP {
                    // Shift the tail one slot right; the rotated-in value is
                    // the PAD from slot n, immediately overwritten.
                    slots[pos..=n].rotate_right(1);
                    slots[pos] = value;
                    *len += 1;
                    return true;
                }
                if atom_tier_enabled() {
                    if let (Some(mut ids), Some(id)) =
                        (sorted_ids_of(&slots[..n]), plain_id(&value))
                    {
                        // Promote instead of spilling: the inline ids plus
                        // the incoming one go columnar.
                        ids.insert(pos, id);
                        self.store = Store::Atoms { ids, start: 0 };
                        return true;
                    }
                }
                // Spill: move the inline elements into a vector, re-tiering
                // on the way out (same-arity all-atom-tuple contents go
                // struct-of-arrays; mixed contents land in the vector).
                let mut items = Vec::with_capacity(2 * INLINE_CAP);
                items.extend(slots.iter_mut().map(|s| std::mem::replace(s, PAD)));
                items.insert(pos, value);
                self.store = SetRepr::from_sorted_vec(items).store;
                return true;
            }
            Store::Spilled { items, start } => {
                // Shifts only the tail after the insertion point; the common
                // ascending-rebuild case (pos == len) is a plain push.
                let pos = match items[*start..].binary_search(&value) {
                    Ok(_) => return false,
                    Err(pos) => pos,
                };
                items.insert(*start + pos, value);
                return true;
            }
            Store::Atoms { ids, start } => {
                if let Some(id) = plain_id(&value) {
                    match ids[*start..].binary_search(&id) {
                        Ok(_) => return false,
                        Err(pos) => {
                            let at = *start + pos;
                            ids.insert(at, id);
                            return true;
                        }
                    }
                }
                if let Some(ix) = atom_index_of(&value) {
                    if let Ok(id) = u32::try_from(ix) {
                        if ids[*start..].binary_search(&id).is_ok() {
                            // A named duplicate of a stored unnamed id:
                            // first-wins keeps the stored copy.
                            return false;
                        }
                    }
                }
                // Novel value the id store cannot represent: widen below.
            }
            Store::Bits { words, len, min } => {
                if let Some(id) = plain_id(&value) {
                    let w = id as usize / 64;
                    if bit_test(words, id) {
                        return false;
                    }
                    if w < words.len() || (id as usize) < BITS_MAX_SPREAD * (*len as usize + 1) {
                        if w >= words.len() {
                            words.resize(w + 1, 0);
                        }
                        words[w] |= 1u64 << (id % 64);
                        *len += 1;
                        if *len == 1 || id < *min {
                            *min = id;
                        }
                        return true;
                    }
                    // Too sparse to stay dense: demote to sorted ids below.
                } else if let Some(ix) = atom_index_of(&value) {
                    if let Ok(id) = u32::try_from(ix) {
                        if bit_test(words, id) {
                            return false;
                        }
                    }
                    // Novel named atom: widen below.
                }
                // Non-atom value or sparse growth: re-tier below.
            }
            Store::Rows { arity, cols, start } => {
                if let Some((row, plain)) = row_key(&value) {
                    if row.len() == *arity {
                        match row_search(cols, *start, &row) {
                            // A duplicate (possibly with named components):
                            // first-wins keeps the stored plain copy.
                            Ok(_) => return false,
                            Err(pos) if plain => {
                                let at = *start + pos;
                                for (col, &c) in cols.iter_mut().zip(&row) {
                                    col.insert(at, c);
                                }
                                return true;
                            }
                            // A novel tuple with named components: the row
                            // store cannot keep the names — widen below.
                            Err(_) => {}
                        }
                    }
                }
                // Arity mismatch or non-row value: widen below.
            }
        }
        // Re-tier path (rare): rebuild in a representation that can hold
        // `value`, then insert into it. `demote_for` keeps the id tier when
        // the incoming value is a plain atom (dense → sparse growth) and
        // widens to the generic tier otherwise, so recursion terminates
        // after one step.
        self.demote_for(&value);
        self.insert(value)
    }

    /// Re-tiers so that `incoming` can be inserted: a plain atom keeps the
    /// columnar family (dense bitset relaxes to sorted ids), anything else
    /// widens to the generic value store. The element sequence is
    /// unchanged, so the switch is observationally free.
    fn demote_for(&mut self, incoming: &Value) {
        if plain_id(incoming).is_some() {
            if let Store::Bits { words, len, .. } = &self.store {
                let mut ids = Vec::with_capacity(*len as usize);
                let mut c = BitCursor::new(words);
                while let Some(id) = c.next() {
                    ids.push(id);
                }
                self.store = Store::Atoms { ids, start: 0 };
                return;
            }
        }
        let items: Vec<Value> = self.iter().collect();
        self.store = store_from_sorted_values(items);
    }

    /// Removes and returns the minimal element. Inline sets shift (at most
    /// [`INLINE_CAP`] moves); spilled and sorted-id sets are amortized
    /// O(1): the window start advances, and once the dead prefix outgrows
    /// the live window the backing vector is compacted, so a uniquely-owned
    /// set driven as a worklist stays O(live size). The bitset tier clears
    /// the minimum bit and scans forward for the next.
    pub fn pop_first(&mut self) -> Option<Value> {
        match &mut self.store {
            Store::Small { len, slots } => {
                let n = *len as usize;
                if n == 0 {
                    return None;
                }
                let value = std::mem::replace(&mut slots[0], PAD);
                // The PAD now at slot 0 rotates to the end of the live range.
                slots[..n].rotate_left(1);
                *len -= 1;
                Some(value)
            }
            Store::Spilled { items, start } => {
                if *start == items.len() {
                    return None;
                }
                let value = std::mem::replace(&mut items[*start], PAD);
                *start += 1;
                if *start * 2 > items.len() {
                    // At least as many pops since the last compaction as
                    // elements moved here, so the drain amortizes to O(1)
                    // per pop.
                    items.drain(..*start);
                    *start = 0;
                }
                Some(value)
            }
            Store::Atoms { ids, start } => {
                let &id = ids.get(*start)?;
                *start += 1;
                if *start * 2 > ids.len() {
                    ids.drain(..*start);
                    *start = 0;
                }
                Some(Value::atom(id as u64))
            }
            Store::Bits { words, len, min } => {
                if *len == 0 {
                    return None;
                }
                let id = *min;
                words[id as usize / 64] &= !(1u64 << (id % 64));
                *len -= 1;
                *min = if *len > 0 {
                    next_set_bit(words, id + 1).expect("popcount says a bit remains")
                } else {
                    0
                };
                Some(Value::atom(id as u64))
            }
            Store::Rows { cols, start, .. } => {
                if *start == cols[0].len() {
                    return None;
                }
                let value = Value::tuple(cols.iter().map(|c| Value::atom(c[*start] as u64)));
                *start += 1;
                if *start * 2 > cols[0].len() {
                    for col in cols.iter_mut() {
                        col.drain(..*start);
                    }
                    *start = 0;
                }
                Some(value)
            }
        }
    }

    /// `self ∪ other` as a bulk merge over the two sorted representations.
    /// On equal elements **`self`'s copy is kept** — the same first-wins
    /// rule as folding `other`'s elements into `self` with
    /// [`SetRepr::insert`], which this is the bulk form of (the VM's fused
    /// `union` fold and native relation-building callers use it instead of
    /// per-element inserts through the evaluator). Columnar operands merge
    /// in id space (word-parallel when both are dense); skewed operand
    /// sizes engage the galloping probe.
    pub fn merge_union(&self, other: &SetRepr) -> SetRepr {
        if other.is_empty() {
            return self.clone();
        }
        if self.is_empty() {
            return other.clone();
        }
        if self.is_columnar() || other.is_columnar() {
            if let (Some((ka, ca, sa)), Some((kb, cb, sb))) = (self.rows_view(), other.rows_view())
            {
                if ka == kb {
                    return union_rows(ka, ca, sa, cb, sb);
                }
            }
            if let (Some(a), Some(b)) = (self.col_view(), other.col_view()) {
                return union_cols(&a, &b);
            }
            // Mixed tiers (atoms ∪ rows, rows ∪ generic, arity mismatch):
            // one linear cursor pass demotes and merges at once — no
            // per-element re-insertion, no quadratic rebuild.
            return SetRepr::from_sorted_vec(merge_union_elems(self, other));
        }
        let (a, b) = (self.value_slice().unwrap(), other.value_slice().unwrap());
        SetRepr::from_sorted_vec(merge_union_sorted(a, b, skewed(a.len(), b.len())))
    }

    /// `self \ other` as a bulk sweep over the two sorted representations —
    /// the bulk form of testing each element of `self` for membership in
    /// `other` and keeping the misses. Same tier dispatch as
    /// [`SetRepr::merge_union`].
    pub fn merge_sorted_difference(&self, other: &SetRepr) -> SetRepr {
        if self.is_empty() || other.is_empty() {
            return self.clone();
        }
        if self.is_columnar() || other.is_columnar() {
            if let (Some((ka, ca, sa)), Some((kb, cb, sb))) = (self.rows_view(), other.rows_view())
            {
                if ka == kb {
                    return diff_rows(ka, ca, sa, cb, sb);
                }
            }
            if let (Some(a), Some(b)) = (self.col_view(), other.col_view()) {
                return diff_cols(&a, &b);
            }
            return SetRepr::from_sorted_vec(merge_difference_elems(self, other));
        }
        let (a, b) = (self.value_slice().unwrap(), other.value_slice().unwrap());
        SetRepr::from_sorted_vec(merge_difference_sorted(a, b, skewed(a.len(), b.len())))
    }

    /// Calls `f(weight, is_novel)` for every element of `incoming` in
    /// ascending order, where `is_novel` says the element is **not** in
    /// `self`. This is the stats skeleton of the fused union fold — the VM
    /// and the parallel pool charge per-element costs through it without
    /// materialising values. O(1)-word membership when `self` is dense and
    /// `incoming` columnar; a linear cursor merge otherwise.
    pub(crate) fn for_each_novelty(&self, incoming: &SetRepr, mut f: impl FnMut(usize, bool)) {
        if let Store::Bits { words, .. } = &self.store {
            if let Some(view) = incoming.col_view() {
                if let Some(ids) = view.id_slice() {
                    for &id in ids {
                        f(1, !bit_test(words, id));
                    }
                } else {
                    let mut c = BitCursor::new(view.bits().unwrap());
                    while let Some(id) = c.next() {
                        f(1, !bit_test(words, id));
                    }
                }
                return;
            }
        }
        let mut acc = self.elems().peekable();
        for e in incoming.elems() {
            loop {
                match acc.peek() {
                    Some(a) if cmp_elem(a, &e) == Ordering::Less => {
                        acc.next();
                    }
                    _ => break,
                }
            }
            let novel = match acc.peek() {
                Some(a) => cmp_elem(a, &e) != Ordering::Equal,
                None => true,
            };
            f(e.weight(), novel);
        }
    }

    /// Number of backing slots currently held (live + dead). Exposed for
    /// tests that pin the amortized-compaction guarantee.
    #[doc(hidden)]
    pub fn backing_slots(&self) -> usize {
        match &self.store {
            Store::Small { .. } => INLINE_CAP,
            Store::Spilled { items, .. } => items.len(),
            Store::Atoms { ids, .. } => ids.len(),
            Store::Bits { words, .. } => words.len() * 64,
            Store::Rows { cols, .. } => cols[0].len(),
        }
    }

    /// True if the elements are stored inline (no heap allocation for the
    /// element storage). Exposed for tests pinning the spill boundary.
    #[doc(hidden)]
    pub fn is_inline(&self) -> bool {
        matches!(self.store, Store::Small { .. })
    }
}

impl Default for SetRepr {
    fn default() -> Self {
        SetRepr::new()
    }
}

/// Cloning compacts and re-tiers: only the live elements are copied, back
/// into the smallest fitting tier, so a shared, partially-drained set
/// re-bases on copy-on-write.
impl Clone for SetRepr {
    fn clone(&self) -> Self {
        match &self.store {
            Store::Small { len, slots } => SetRepr {
                store: Store::Small {
                    len: *len,
                    slots: slots.clone(),
                },
            },
            Store::Spilled { items, start } => SetRepr::from_sorted_vec(items[*start..].to_vec()),
            Store::Atoms { ids, start } => SetRepr::from_sorted_ids(ids[*start..].to_vec()),
            Store::Bits { words, .. } => SetRepr::from_bits(words.clone()),
            Store::Rows { arity, cols, start } => SetRepr::from_sorted_cols(
                *arity,
                cols.iter().map(|c| c[*start..].to_vec()).collect(),
            ),
        }
    }
}

/// Builds the set from arbitrary (unsorted, possibly duplicated) values.
/// Deduplication is first-wins, matching a sequence of `BTreeSet::insert`s:
/// the stable sort keeps equal values in arrival order and `dedup` keeps the
/// first of each run.
impl FromIterator<Value> for SetRepr {
    fn from_iter<I: IntoIterator<Item = Value>>(iter: I) -> Self {
        let mut items: Vec<Value> = iter.into_iter().collect();
        items.sort();
        items.dedup();
        SetRepr::from_sorted_vec(items)
    }
}

impl Extend<Value> for SetRepr {
    fn extend<I: IntoIterator<Item = Value>>(&mut self, iter: I) {
        for v in iter {
            self.insert(v);
        }
    }
}

impl<'a> IntoIterator for &'a SetRepr {
    type Item = Value;
    type IntoIter = SetIter<'a>;

    fn into_iter(self) -> Self::IntoIter {
        self.iter()
    }
}

impl IntoIterator for SetRepr {
    type Item = Value;
    type IntoIter = std::vec::IntoIter<Value>;

    fn into_iter(self) -> Self::IntoIter {
        // Unify the stores into one owned vector of the live elements
        // (dead slots are placeholders, not elements).
        match self.store {
            Store::Small { len, slots } => {
                let mut out: Vec<Value> = slots.into_iter().collect();
                out.truncate(len as usize);
                out.into_iter()
            }
            Store::Spilled { mut items, start } => {
                items.drain(..start);
                items.into_iter()
            }
            Store::Atoms { ids, start } => ids[start..]
                .iter()
                .map(|&i| Value::atom(i as u64))
                .collect::<Vec<_>>()
                .into_iter(),
            Store::Bits { words, len, .. } => {
                let mut out = Vec::with_capacity(len as usize);
                let mut c = BitCursor::new(&words);
                while let Some(id) = c.next() {
                    out.push(Value::atom(id as u64));
                }
                out.into_iter()
            }
            Store::Rows { cols, start, .. } => (start..cols[0].len())
                .map(|i| Value::tuple(cols.iter().map(|c| Value::atom(c[i] as u64))))
                .collect::<Vec<_>>()
                .into_iter(),
        }
    }
}

impl PartialEq for SetRepr {
    fn eq(&self, other: &Self) -> bool {
        self.len() == other.len() && self.cmp(other) == Ordering::Equal
    }
}
impl Eq for SetRepr {}

impl PartialOrd for SetRepr {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Lexicographic on the ascending element sequence — the same order
/// `BTreeSet<Value>` exposed, so the total [`Value`] order (and with it every
/// `choose`/`rest`/`set-reduce` traversal) is unchanged. Tier-blind: the
/// fast paths (value slices, id slices) agree with the mixed-tier cursor
/// walk by construction.
impl Ord for SetRepr {
    fn cmp(&self, other: &Self) -> Ordering {
        if let (Some(a), Some(b)) = (self.value_slice(), other.value_slice()) {
            return a.cmp(b);
        }
        if let (Some(a), Some(b)) = (self.live_ids(), other.live_ids()) {
            return a.cmp(b);
        }
        let mut x = self.elems();
        let mut y = other.elems();
        loop {
            match (x.next(), y.next()) {
                (Some(e), Some(f)) => match cmp_elem(&e, &f) {
                    Ordering::Equal => continue,
                    ord => return ord,
                },
                (Some(_), None) => return Ordering::Greater,
                (None, Some(_)) => return Ordering::Less,
                (None, None) => return Ordering::Equal,
            }
        }
    }
}

impl Hash for SetRepr {
    fn hash<H: Hasher>(&self, state: &mut H) {
        // Like the std collections: length, then elements in order. The
        // columnar path hashes reconstructed unnamed atoms — bit-identical
        // to hashing the stored `Value::Atom`s of the generic tier, since
        // atoms hash by index only.
        self.len().hash(state);
        match self.value_slice() {
            Some(items) => {
                for v in items {
                    v.hash(state);
                }
            }
            None => {
                for v in self.iter() {
                    v.hash(state);
                }
            }
        }
    }
}

/// Renders like `BTreeSet` did: `{elem, elem, …}`.
impl fmt::Debug for SetRepr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_set().entries(self.iter()).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn atoms(ixs: impl IntoIterator<Item = u64>) -> SetRepr {
        ixs.into_iter().map(Value::atom).collect()
    }

    /// RAII guard: disables the columnar tier on this thread, restoring the
    /// previous value on drop. Thread-local, so concurrent tests on other
    /// threads are unaffected.
    struct TierGuard(bool);
    impl TierGuard {
        fn off() -> Self {
            TierGuard(set_atom_tier_enabled(false))
        }
    }
    impl Drop for TierGuard {
        fn drop(&mut self) {
            set_atom_tier_enabled(self.0);
        }
    }

    #[test]
    fn from_iter_sorts_and_dedups_first_wins() {
        let s: SetRepr = [
            Value::atom(3),
            Value::named_atom(1, "first"),
            Value::atom(1),
            Value::atom(2),
        ]
        .into_iter()
        .collect();
        assert_eq!(s.len(), 3);
        // Equal atoms collapse to the *first* occurrence (the named one).
        assert_eq!(format!("{:?}", s.first().unwrap()), "first#1");
    }

    #[test]
    fn insert_keeps_sorted_and_reports_novelty() {
        let mut s = SetRepr::new();
        assert!(s.insert(Value::atom(5)));
        assert!(s.insert(Value::atom(1)));
        assert!(s.insert(Value::atom(3)));
        assert!(!s.insert(Value::atom(3)));
        let got: Vec<_> = s.iter().collect();
        assert_eq!(got, vec![Value::atom(1), Value::atom(3), Value::atom(5)]);
        assert!(s.contains(&Value::atom(3)));
        assert!(!s.contains(&Value::atom(4)));
    }

    #[test]
    fn insert_keeps_existing_on_duplicate() {
        let mut s = SetRepr::new();
        s.insert(Value::named_atom(2, "kept"));
        assert!(!s.insert(Value::atom(2)));
        assert_eq!(format!("{:?}", s.first().unwrap()), "kept#2");
    }

    #[test]
    fn small_sets_stay_inline_and_spill_on_growth() {
        let mut s = SetRepr::new();
        for i in 0..INLINE_CAP as u64 {
            assert!(s.is_inline(), "inline up to the cap");
            s.insert(Value::atom(i * 2));
        }
        assert!(s.is_inline(), "exactly at the cap is still inline");
        // The overflowing insert lands in the middle and keeps the order.
        s.insert(Value::atom(3));
        assert!(!s.is_inline(), "past the cap leaves the inline store");
        let got: Vec<_> = s.iter().collect();
        assert_eq!(
            got,
            [0u64, 2, 3, 4, 6].map(Value::atom).to_vec(),
            "order preserved across the spill"
        );
        // Once grown, stays grown in place — but a clone re-smallifies
        // when the live window fits inline again.
        s.pop_first();
        s.pop_first();
        assert!(!s.is_inline());
        assert_eq!(s.len(), 3);
        let compacted = s.clone();
        assert!(compacted.is_inline(), "clone compacts back inline");
        assert_eq!(compacted, s);
    }

    #[test]
    fn pop_first_drains_ascending_in_place() {
        for seed in [vec![4, 2, 9], vec![4, 2, 9, 11, 7, 5]] {
            // Covers both the inline and the grown store.
            let mut s = atoms(seed.iter().copied());
            let mut expect: Vec<u64> = seed.clone();
            expect.sort_unstable();
            for e in expect {
                assert_eq!(s.first(), Some(Value::atom(e)));
                assert_eq!(s.pop_first(), Some(Value::atom(e)));
            }
            assert_eq!(s.pop_first(), None);
            assert!(s.is_empty());
        }
    }

    #[test]
    fn window_is_invisible_to_eq_ord_hash_and_clone() {
        use std::collections::hash_map::DefaultHasher;
        // Large enough to leave the inline store, so a drained window exists.
        let mut drained = atoms([1, 2, 3, 4, 5, 6]);
        drained.pop_first();
        let fresh = atoms([2, 3, 4, 5, 6]);
        assert_eq!(drained, fresh);
        assert_eq!(drained.cmp(&fresh), Ordering::Equal);
        let hash = |s: &SetRepr| {
            let mut h = DefaultHasher::new();
            s.hash(&mut h);
            h.finish()
        };
        assert_eq!(hash(&drained), hash(&fresh));
        let compacted = drained.clone();
        assert_eq!(compacted, fresh);
        assert_eq!(compacted.backing_slots(), 5, "clone copies only the window");
    }

    #[test]
    fn insert_into_drained_window_lands_in_window() {
        let mut s = atoms([1, 5, 9, 13, 17]);
        s.pop_first();
        assert!(s.insert(Value::atom(3)));
        let got: Vec<_> = s.iter().collect();
        assert_eq!(got, [3u64, 5, 9, 13, 17].map(Value::atom).to_vec());
        // Re-inserting the popped minimum is a fresh element again.
        assert!(s.insert(Value::atom(1)));
        assert_eq!(s.first(), Some(Value::atom(1)));
    }

    #[test]
    fn interleaved_pop_and_insert_keeps_backing_storage_bounded() {
        // The worklist pattern `S = insert(x, rest(S))`, iterated: without
        // amortized compaction the dead prefix would grow by one slot per
        // round on a uniquely-owned set.
        let mut s = atoms(0u64..8);
        for round in 0..10_000u64 {
            let popped = s.pop_first().expect("non-empty");
            assert_eq!(popped, Value::atom(round), "FIFO over ranks");
            s.insert(Value::atom(round + 8));
            assert_eq!(s.len(), 8, "round {round}");
        }
        assert!(
            s.backing_slots() <= 2 * s.len(),
            "backing storage grew unboundedly: {} slots for {} live elements",
            s.backing_slots(),
            s.len()
        );
    }

    #[test]
    fn ordering_is_lexicographic_on_elements() {
        assert!(atoms([1]) < atoms([2]));
        assert!(atoms([1, 2]) < atoms([1, 3]));
        assert!(atoms([1]) < atoms([1, 2]), "a strict prefix sorts first");
        assert!(atoms([0, 1]) < atoms([1]), "smaller minimum sorts first");
        assert_eq!(atoms([]).cmp(&atoms([])), Ordering::Equal);
        // Grown and inline stores compare by elements alone.
        let grown = atoms([1, 2, 3, 4, 5, 6]);
        let mut drained = grown.clone();
        for _ in 0..3 {
            drained.pop_first();
        }
        assert_eq!(drained.cmp(&atoms([4, 5, 6])), Ordering::Equal);
    }

    #[test]
    fn owned_iteration_skips_dead_slots() {
        let mut s = atoms([7, 3, 5]);
        s.pop_first();
        let got: Vec<_> = s.into_iter().collect();
        assert_eq!(got, vec![Value::atom(5), Value::atom(7)]);
        let mut s = atoms([7, 3, 5, 11, 9, 1]);
        s.pop_first();
        let got: Vec<_> = s.into_iter().collect();
        assert_eq!(got, [3u64, 5, 7, 9, 11].map(Value::atom).to_vec());
    }

    #[test]
    fn merge_union_is_first_wins_and_sorted() {
        let a = atoms([1, 3, 5, 7, 9, 11]);
        let b = atoms([2, 3, 4, 11, 12]);
        let u = a.merge_union(&b);
        let got: Vec<_> = u.iter().collect();
        assert_eq!(
            got,
            [1u64, 2, 3, 4, 5, 7, 9, 11, 12].map(Value::atom).to_vec()
        );
        // Ties keep self's copy — the same rule as insert-into-self.
        let named: SetRepr = [Value::named_atom(2, "mine")].into_iter().collect();
        let other: SetRepr = [Value::atom(2)].into_iter().collect();
        let u = named.merge_union(&other);
        assert_eq!(format!("{:?}", u.first().unwrap()), "mine#2");
        // Matches the element-by-element fold exactly.
        let mut folded = a.clone();
        for v in b.iter() {
            folded.insert(v);
        }
        assert_eq!(a.merge_union(&b), folded);
        // Identities.
        assert_eq!(a.merge_union(&SetRepr::new()), a);
        assert_eq!(SetRepr::new().merge_union(&b), b);
    }

    #[test]
    fn merge_sorted_difference_matches_per_element_membership() {
        let a = atoms([1, 2, 3, 5, 8, 13]);
        let b = atoms([2, 4, 8, 9]);
        let d = a.merge_sorted_difference(&b);
        let got: Vec<_> = d.iter().collect();
        assert_eq!(got, [1u64, 3, 5, 13].map(Value::atom).to_vec());
        let expected: SetRepr = a.iter().filter(|v| !b.contains(v)).collect();
        assert_eq!(d, expected);
        assert_eq!(a.merge_sorted_difference(&SetRepr::new()), a);
        assert!(SetRepr::new().merge_sorted_difference(&b).is_empty());
        assert!(a.merge_sorted_difference(&a).is_empty());
    }

    #[test]
    fn merge_results_fit_inline_when_small() {
        let a = atoms([1, 2]);
        let b = atoms([2, 3]);
        assert!(a.merge_union(&b).is_inline());
        let big = atoms(0..10);
        assert!(!big.merge_union(&a).is_inline());
        assert!(big.merge_sorted_difference(&atoms(0..7)).is_inline());
    }

    #[test]
    fn debug_renders_as_a_set() {
        assert_eq!(format!("{:?}", atoms([2, 1])), "{d1, d2}");
    }

    // ---- columnar tier ----

    #[test]
    fn all_atom_growth_promotes_to_the_columnar_tier() {
        let s = atoms(0..10);
        assert_eq!(s.tier_label(), "atoms");
        assert!(s.is_columnar());
        assert_eq!(s.columnar_weight_sum(), Some(10));
        // Small all-atom sets stay inline; the tier engages past the cap.
        assert_eq!(atoms(0..3).tier_label(), "inline");
        // Spill-by-insert promotes too.
        let mut s = atoms(0..INLINE_CAP as u64);
        assert!(s.is_inline());
        s.insert(Value::atom(99));
        assert_eq!(s.tier_label(), "atoms");
    }

    #[test]
    fn non_atom_and_named_contents_stay_generic() {
        let named: SetRepr = (0..8).map(|i| Value::named_atom(i, "n")).collect();
        assert_eq!(named.tier_label(), "spilled");
        // A huge index cannot be a u32 id.
        let wide: SetRepr = (0..8).map(|i| Value::atom(i + (1 << 40))).collect();
        assert_eq!(wide.tier_label(), "spilled");
        // Tuples with a named component cannot live in the row store (the
        // columns could not reproduce the name).
        let named_pairs: SetRepr = (0..8)
            .map(|i| Value::tuple([Value::named_atom(i, "n"), Value::atom(i)]))
            .collect();
        assert_eq!(named_pairs.tier_label(), "spilled");
        // Mixed arities have no single column family.
        let mixed: SetRepr = (0..4)
            .map(|i| Value::tuple([Value::atom(i)]))
            .chain((0..4).map(|i| Value::tuple([Value::atom(i), Value::atom(i)])))
            .collect();
        assert_eq!(mixed.tier_label(), "spilled");
        // A non-atom component disqualifies the whole set.
        let nats: SetRepr = (0..8)
            .map(|i| Value::tuple([Value::atom(i), Value::nat(i)]))
            .collect();
        assert_eq!(nats.tier_label(), "spilled");
        // The empty tuple has no columns.
        let units: SetRepr = [Value::tuple([]), Value::atom(0)]
            .into_iter()
            .chain((1..7).map(Value::atom))
            .collect();
        assert_eq!(units.tier_label(), "spilled");
    }

    #[test]
    fn widening_on_foreign_insert_preserves_elements() {
        let mut s = atoms(0..10);
        assert_eq!(s.tier_label(), "atoms");
        assert!(s.insert(Value::tuple([Value::atom(0)])));
        assert_eq!(s.tier_label(), "spilled");
        assert_eq!(s.len(), 11);
        let mut expect: Vec<Value> = (0..10).map(Value::atom).collect();
        expect.push(Value::tuple([Value::atom(0)]));
        assert_eq!(s.iter().collect::<Vec<_>>(), expect);
        // A *novel* named atom also widens (the id store cannot keep the
        // name)…
        let mut s = atoms(0..10);
        assert!(s.insert(Value::named_atom(77, "new")));
        assert_eq!(s.tier_label(), "spilled");
        assert_eq!(format!("{}", s.iter().last().unwrap()), "new#77");
        // …but a named *duplicate* is first-wins: the stored unnamed copy
        // stays and the tier is kept.
        let mut s = atoms(0..10);
        assert!(!s.insert(Value::named_atom(3, "dup")));
        assert_eq!(s.tier_label(), "atoms");
        assert!(s.contains(&Value::named_atom(3, "dup")));
    }

    #[test]
    fn dense_universes_use_the_bitset_tier() {
        let s = atoms(0..100);
        assert_eq!(s.tier_label(), "bits");
        assert_eq!(s.len(), 100);
        assert!(s.contains(&Value::atom(42)));
        assert!(!s.contains(&Value::atom(100)));
        assert_eq!(s.first(), Some(Value::atom(0)));
        // Drains ascending like every other tier.
        let mut d = s.clone();
        for i in 0..100 {
            assert_eq!(d.pop_first(), Some(Value::atom(i)));
        }
        assert_eq!(d.pop_first(), None);
        // A sparse insert demotes to sorted ids without losing elements.
        let mut s = atoms(0..100);
        assert!(s.insert(Value::atom(1_000_000)));
        assert_eq!(s.tier_label(), "atoms");
        assert_eq!(s.len(), 101);
        assert!(s.contains(&Value::atom(99)));
        assert!(s.contains(&Value::atom(1_000_000)));
        // In-range inserts keep the dense form.
        let mut s = atoms((0..100).map(|i| i * 2));
        assert_eq!(s.tier_label(), "bits");
        assert!(s.insert(Value::atom(3)));
        assert_eq!(s.tier_label(), "bits");
        assert!(!s.insert(Value::atom(4)));
    }

    #[test]
    fn toggle_off_keeps_every_set_generic() {
        let _guard = TierGuard::off();
        assert_eq!(atoms(0..10).tier_label(), "spilled");
        assert_eq!(atoms(0..100).tier_label(), "spilled");
        assert_eq!(SetRepr::new_atoms().tier_label(), "inline");
        let mut s = atoms(0..INLINE_CAP as u64);
        s.insert(Value::atom(99));
        assert_eq!(s.tier_label(), "spilled");
        // A columnar set built while the tier was on widens on clone.
        let columnar = {
            let _on = set_atom_tier_enabled(true);
            let s = atoms(0..10);
            set_atom_tier_enabled(false);
            s
        };
        assert_eq!(columnar.tier_label(), "atoms");
        assert_eq!(columnar.clone().tier_label(), "spilled");
    }

    #[test]
    fn id_merges_match_generic_merges() {
        let mk = |ids: &[u64]| -> Vec<Value> { ids.iter().map(|&i| Value::atom(i)).collect() };
        let cases: Vec<(Vec<u64>, Vec<u64>)> = vec![
            ((0..20).collect(), (10..30).collect()),
            ((0..200).collect(), (150..160).collect()),
            ((0..200).step_by(3).collect(), (0..200).step_by(7).collect()),
            ((0..100).collect(), vec![5]),
            (vec![1, 2, 3], (0..500).collect()),
        ];
        for (xa, xb) in cases {
            let (ca, cb) = (atoms(xa.iter().copied()), atoms(xb.iter().copied()));
            let (ga, gb) = {
                let _guard = TierGuard::off();
                let ga: SetRepr = mk(&xa).into_iter().collect();
                let gb: SetRepr = mk(&xb).into_iter().collect();
                (ga, gb)
            };
            let (u_c, u_g) = (ca.merge_union(&cb), {
                let _guard = TierGuard::off();
                ga.merge_union(&gb)
            });
            assert_eq!(u_c, u_g, "union {xa:?} ∪ {xb:?}");
            assert_eq!(
                u_c.iter().collect::<Vec<_>>(),
                u_g.iter().collect::<Vec<_>>()
            );
            let (d_c, d_g) = (ca.merge_sorted_difference(&cb), {
                let _guard = TierGuard::off();
                ga.merge_sorted_difference(&gb)
            });
            assert_eq!(d_c, d_g, "difference {xa:?} \\ {xb:?}");
            assert_eq!(
                d_c.iter().collect::<Vec<_>>(),
                d_g.iter().collect::<Vec<_>>()
            );
        }
    }

    #[test]
    fn mixed_tier_merges_agree_with_element_folds() {
        // Columnar ∪ generic (tuples) exercises the cursor merge.
        let col = atoms(0..10);
        let gen: SetRepr = (0..6).map(|i| Value::tuple([Value::atom(i)])).collect();
        let u = col.merge_union(&gen);
        assert_eq!(u.len(), 16);
        assert_eq!(u.tier_label(), "spilled", "tuples force the generic tier");
        let mut folded = col.clone();
        for v in gen.iter() {
            folded.insert(v);
        }
        assert_eq!(u, folded);
        // Named atoms in the generic operand: first-wins keeps columnar
        // self's unnamed copies.
        let named: SetRepr = (5..15).map(|i| Value::named_atom(i, "n")).collect();
        let u = col.merge_union(&named);
        assert_eq!(u.len(), 15);
        assert_eq!(format!("{}", u.first().unwrap()), "d0");
        let five = u.iter().nth(5).unwrap();
        assert_eq!(format!("{five}"), "d5", "self's copy won the tie");
        let ten = u.iter().nth(10).unwrap();
        assert_eq!(format!("{ten}"), "n#10", "other's tail is kept verbatim");
        // Difference across tiers.
        let d = col.merge_sorted_difference(&named);
        assert_eq!(
            d.iter().collect::<Vec<_>>(),
            (0..5).map(Value::atom).collect::<Vec<_>>()
        );
    }

    #[test]
    fn galloping_merge_matches_linear_on_values() {
        // Skewed sizes over generic elements drive the galloping path;
        // compare against the per-element fold. The tuples carry a named
        // component so they stay on the generic tier (plain atom tuples
        // would tier as rows and take the columnar merge instead).
        let big: SetRepr = (0..300)
            .map(|i| Value::tuple([Value::named_atom(i, "v"), Value::atom(i)]))
            .collect();
        let small: SetRepr = [140u64, 141, 260]
            .into_iter()
            .map(|i| Value::tuple([Value::named_atom(i, "v"), Value::atom(i)]))
            .collect();
        let u = big.merge_union(&small);
        assert_eq!(u.len(), 300);
        let mut folded = big.clone();
        for v in small.iter() {
            folded.insert(v);
        }
        assert_eq!(u, folded);
        let d = big.merge_sorted_difference(&small);
        assert_eq!(d.len(), 297);
        let expected: SetRepr = big.iter().filter(|v| !small.contains(v)).collect();
        assert_eq!(d, expected);
        // And the reverse skew.
        let u2 = small.merge_union(&big);
        assert_eq!(u2, u);
        assert!(small.merge_sorted_difference(&big).is_empty());
    }

    #[test]
    fn for_each_novelty_matches_reference_across_tiers() {
        let reference = |acc: &SetRepr, inc: &SetRepr| -> Vec<(usize, bool)> {
            inc.iter()
                .map(|v| (v.weight(), !acc.contains(&v)))
                .collect()
        };
        let combos: Vec<(SetRepr, SetRepr)> = vec![
            (atoms(0..100), atoms(50..150)),          // bits × bits
            (atoms(0..100), atoms([5, 500, 700])),    // bits × atoms-range
            (atoms([1, 5, 9, 11, 30]), atoms(0..80)), // atoms × bits
            (atoms(0..10), atoms(5..15)),             // atoms × atoms
            (
                atoms(0..100),
                (0..6).map(|i| Value::tuple([Value::atom(i)])).collect(),
            ), // bits × rows
            (
                (0..8).map(|i| Value::tuple([Value::atom(i)])).collect(),
                (4..12).map(|i| Value::tuple([Value::atom(i)])).collect(),
            ), // rows × rows
            (
                (0..8).map(|i| Value::named_atom(i, "n")).collect(),
                (4..12).map(|i| Value::named_atom(i, "n")).collect(),
            ), // generic × generic
            (
                (0..8)
                    .map(|i| Value::tuple([Value::atom(i), Value::atom(i)]))
                    .collect(),
                (0..6).map(|i| Value::tuple([Value::atom(i)])).collect(),
            ), // rows × rows, arity mismatch
            (
                (0..8)
                    .map(|i| Value::tuple([Value::atom(i), Value::atom(i)]))
                    .collect(),
                (4..12)
                    .map(|i| Value::tuple([Value::named_atom(i, "n"), Value::atom(i)]))
                    .collect(),
            ), // rows × generic tuples
            (SetRepr::new(), atoms(0..5)),
            (atoms(0..5), SetRepr::new()),
        ];
        for (acc, inc) in combos {
            let mut got = Vec::new();
            acc.for_each_novelty(&inc, |w, novel| got.push((w, novel)));
            assert_eq!(
                got,
                reference(&acc, &inc),
                "acc tier {} inc tier {}",
                acc.tier_label(),
                inc.tier_label()
            );
        }
    }

    #[test]
    fn iter_range_partitions_every_tier() {
        let sets = [
            atoms([3, 1, 4]),                                    // inline
            atoms(0..10),                                        // atoms
            atoms(0..100),                                       // bits
            (0..8).map(|i| Value::named_atom(i, "n")).collect(), // spilled
            (0..8)
                .map(|i| Value::tuple([Value::atom(i), Value::atom(i + 1)]))
                .collect(), // rows
        ];
        for s in &sets {
            let n = s.len();
            let all: Vec<_> = s.iter().collect();
            for split in [0, 1, n / 2, n] {
                let lo: Vec<_> = s.iter_range(0..split).collect();
                let hi: Vec<_> = s.iter_range(split..n).collect();
                assert_eq!(lo.len(), split, "tier {}", s.tier_label());
                let glued: Vec<_> = lo.into_iter().chain(hi).collect();
                assert_eq!(glued, all, "tier {} split {split}", s.tier_label());
            }
            // Three-way split too.
            if n >= 3 {
                let thirds: Vec<_> = s
                    .iter_range(0..n / 3)
                    .chain(s.iter_range(n / 3..2 * n / 3))
                    .chain(s.iter_range(2 * n / 3..n))
                    .collect();
                assert_eq!(thirds, all, "tier {}", s.tier_label());
            }
        }
    }

    #[test]
    fn cross_tier_eq_ord_hash_agree() {
        use std::collections::hash_map::DefaultHasher;
        let hash = |s: &SetRepr| {
            let mut h = DefaultHasher::new();
            s.hash(&mut h);
            h.finish()
        };
        // The same element sequence in columnar and generic clothing.
        let col = atoms(0..100);
        assert_eq!(col.tier_label(), "bits");
        let gen: SetRepr = {
            let _guard = TierGuard::off();
            (0..100).map(Value::atom).collect()
        };
        assert_eq!(gen.tier_label(), "spilled");
        assert_eq!(col, gen);
        assert_eq!(col.cmp(&gen), Ordering::Equal);
        assert_eq!(hash(&col), hash(&gen));
        // Sorted-id tier against both.
        let mid = atoms(0..10);
        let gen10: SetRepr = {
            let _guard = TierGuard::off();
            (0..10).map(Value::atom).collect()
        };
        assert_eq!(mid, gen10);
        assert_eq!(hash(&mid), hash(&gen10));
        // Order across tiers follows the element order.
        assert!(atoms(0..10) < atoms(0..100), "prefix sorts first");
        assert!(gen10 < col);
        // Named atoms compare equal to unnamed ones across tiers.
        let named: SetRepr = (0..10).map(|i| Value::named_atom(i, "x")).collect();
        assert_eq!(named.tier_label(), "spilled");
        assert_eq!(named, mid);
        assert_eq!(hash(&named), hash(&mid));
    }

    #[test]
    fn new_atoms_is_a_working_empty_set() {
        let mut s = SetRepr::new_atoms();
        assert_eq!(s.tier_label(), "atoms");
        assert!(s.is_empty());
        assert_eq!(s.first(), None);
        assert_eq!(s.pop_first(), None);
        assert!(s.insert(Value::atom(2)));
        assert!(s.insert(Value::atom(1)));
        assert!(!s.insert(Value::atom(2)));
        assert_eq!(s.len(), 2);
        assert_eq!(s.first(), Some(Value::atom(1)));
        assert_eq!(s, atoms([1, 2]));
        // Widening works from the empty columnar store too.
        let mut s = SetRepr::new_atoms();
        assert!(s.insert(Value::nat(7)));
        assert_eq!(s.tier_label(), "inline");
    }

    #[test]
    fn gallop_lt_finds_the_boundary() {
        let s: Vec<u32> = (0..100).map(|i| i * 2).collect();
        for bound in [1u32, 2, 3, 50, 51, 197, 198, 199, 500] {
            let expect = s.partition_point(|x| *x < bound);
            if expect > 0 {
                assert_eq!(gallop_lt(&s, &bound), expect, "bound {bound}");
            }
        }
    }

    fn pairs(ixs: impl IntoIterator<Item = u64>) -> SetRepr {
        ixs.into_iter()
            .map(|i| Value::tuple([Value::atom(i / 7), Value::atom(i)]))
            .collect()
    }

    #[test]
    fn tuple_sets_promote_to_the_rows_tier() {
        let s = pairs(0..10);
        assert_eq!(s.tier_label(), "rows");
        assert!(s.is_columnar());
        // An arity-k row weighs 1 + k, like the tuple it stands for.
        assert_eq!(s.columnar_weight_sum(), Some(30));
        assert_eq!(s.len(), 10);
        assert_eq!(
            s.first(),
            Some(Value::tuple([Value::atom(0), Value::atom(0)]))
        );
        assert!(s.contains(&Value::tuple([Value::atom(1), Value::atom(9)])));
        assert!(!s.contains(&Value::tuple([Value::atom(9), Value::atom(1)])));
        assert!(!s.contains(&Value::tuple([Value::atom(0)])));
        assert!(!s.contains(&Value::atom(0)));
        // Small tuple sets stay inline; spill-by-insert promotes.
        let mut s = pairs(0..INLINE_CAP as u64);
        assert!(s.is_inline());
        s.insert(Value::tuple([Value::atom(50), Value::atom(50)]));
        assert_eq!(s.tier_label(), "rows");
        assert_eq!(s.len(), INLINE_CAP + 1);
        // Row order is the Value order: lexicographic by component.
        let drained: Vec<Value> = s.clone().into_iter().collect();
        let mut expect: Vec<Value> = s.iter().collect();
        expect.sort();
        assert_eq!(drained, expect);
        // Unary tuples work too: columns ≠ bare atom ids.
        let unary: SetRepr = (0..8).map(|i| Value::tuple([Value::atom(i)])).collect();
        assert_eq!(unary.tier_label(), "rows");
        assert!(unary.contains(&Value::tuple([Value::atom(3)])));
        assert!(!unary.contains(&Value::atom(3)));
    }

    #[test]
    fn rows_widen_on_foreign_insert() {
        // Arity change demotes in place without losing elements.
        let mut s = pairs(0..10);
        assert!(s.insert(Value::tuple([Value::atom(0)])));
        assert_eq!(s.tier_label(), "spilled");
        assert_eq!(s.len(), 11);
        assert_eq!(s.first(), Some(Value::tuple([Value::atom(0)])));
        // A non-atom component demotes too.
        let mut s = pairs(0..10);
        assert!(s.insert(Value::tuple([Value::atom(0), Value::nat(0)])));
        assert_eq!(s.tier_label(), "spilled");
        assert_eq!(s.len(), 11);
        // A *novel* tuple with a named component demotes (columns cannot
        // reproduce the name)…
        let mut s = pairs(0..10);
        assert!(s.insert(Value::tuple([Value::named_atom(9, "n"), Value::atom(9)])));
        assert_eq!(s.tier_label(), "spilled");
        // …but a named *duplicate* is first-wins: the stored plain copy
        // stays and the tier is kept.
        let mut s = pairs(0..10);
        let dup = Value::tuple([Value::named_atom(0, "n"), Value::atom(3)]);
        assert!(s.contains(&dup));
        assert!(!s.insert(dup));
        assert_eq!(s.tier_label(), "rows");
        // A plain non-member atom (not a tuple at all) demotes.
        let mut s = pairs(0..10);
        assert!(s.insert(Value::atom(0)));
        assert_eq!(s.tier_label(), "spilled");
        assert_eq!(s.first(), Some(Value::atom(0)));
    }

    #[test]
    fn row_merges_match_generic_merges() {
        let cases: Vec<(Vec<u64>, Vec<u64>)> = vec![
            ((0..20).collect(), (10..30).collect()),
            ((0..200).collect(), (150..160).collect()), // skewed: galloping
            ((0..200).step_by(3).collect(), (0..200).step_by(7).collect()),
            (vec![5], (0..100).collect()),
            ((0..10).collect(), vec![]),
        ];
        for (xa, xb) in cases {
            let (ra, rb) = (pairs(xa.iter().copied()), pairs(xb.iter().copied()));
            let (ga, gb) = {
                let _guard = TierGuard::off();
                let ga: SetRepr = ra.iter().collect();
                let gb: SetRepr = rb.iter().collect();
                (ga, gb)
            };
            let u = ra.merge_union(&rb);
            let d = ra.merge_sorted_difference(&rb);
            let (ug, dg) = {
                let _guard = TierGuard::off();
                (ga.merge_union(&gb), ga.merge_sorted_difference(&gb))
            };
            assert_eq!(u, ug, "union {xa:?} ∪ {xb:?}");
            assert_eq!(u.iter().collect::<Vec<_>>(), ug.iter().collect::<Vec<_>>());
            assert_eq!(d, dg, "difference {xa:?} \\ {xb:?}");
            assert_eq!(d.iter().collect::<Vec<_>>(), dg.iter().collect::<Vec<_>>());
        }
        // An arity mismatch falls back to the cursor merge and demotes.
        let (unary, binary): (SetRepr, SetRepr) = (
            (0..8).map(|i| Value::tuple([Value::atom(i)])).collect(),
            pairs(0..8),
        );
        let u = unary.merge_union(&binary);
        assert_eq!(u.len(), 16);
        assert_eq!(u.tier_label(), "spilled");
        let mut folded = unary.clone();
        for v in binary.iter() {
            folded.insert(v);
        }
        assert_eq!(u, folded);
    }

    #[test]
    fn mixed_atoms_and_rows_merge_in_one_pass() {
        // The adversarial mix: an id store against a row store. The cursor
        // merge demotes and merges in a single pass (no per-element
        // re-insert, no quadratic rebuild).
        let a = atoms(0..50);
        let r = pairs(0..50);
        let u = a.merge_union(&r);
        assert_eq!(u.len(), 100);
        assert_eq!(u.tier_label(), "spilled");
        // Atoms sort before tuples, so the id store's elements lead.
        assert_eq!(u.first(), Some(Value::atom(0)));
        assert_eq!(
            u.iter().nth(50),
            Some(Value::tuple([Value::atom(0), Value::atom(0)]))
        );
        // Symmetric direction agrees.
        assert_eq!(r.merge_union(&a), u);
        // Difference removes nothing: no atom equals any pair.
        assert_eq!(a.merge_sorted_difference(&r), a);
        assert_eq!(r.merge_sorted_difference(&a), r);
        // First-wins tie direction survives the demote-and-merge: a named
        // generic operand loses ties against both columnar stores.
        let named: SetRepr = (0..3)
            .map(|i| Value::named_atom(i, "n"))
            .chain((0..3).map(|i| Value::tuple([Value::named_atom(i / 7, "n"), Value::atom(i)])))
            .collect();
        assert_eq!(named.tier_label(), "spilled");
        let u = a.merge_union(&named);
        assert_eq!(format!("{}", u.first().unwrap()), "d0", "self's atom won");
        let u = r.merge_union(&named);
        // The named bare atoms sort ahead of every tuple; the first tuple
        // is self's plain copy of the duplicated (0, 0).
        let first_tuple = u.iter().nth(3).unwrap();
        assert_eq!(format!("{first_tuple}"), "[d0, d0]", "self's row won");
        // The reverse direction keeps the named copies: *other* now loses.
        let u = named.merge_union(&r);
        assert_eq!(format!("{}", u.iter().nth(3).unwrap()), "[n#0, d0]");
    }

    #[test]
    fn rows_pop_first_drains_ascending_and_compacts() {
        let mut s = pairs(0..40);
        let expect: Vec<Value> = s.iter().collect();
        let mut drained = Vec::new();
        let mut min_backing = usize::MAX;
        while let Some(v) = s.pop_first() {
            min_backing = min_backing.min(s.backing_slots());
            drained.push(v);
        }
        assert_eq!(drained, expect);
        // The dead prefix was reclaimed along the way, not kept forever.
        assert!(min_backing < 40, "backing never shrank: {min_backing}");
        // Worklist pattern: interleaved pop and insert stays on the tier.
        let mut s = pairs(0..20);
        for i in 20..60 {
            s.pop_first();
            s.insert(Value::tuple([Value::atom(i / 7), Value::atom(i)]));
            assert_eq!(s.tier_label(), "rows");
        }
        assert_eq!(s.len(), 20);
    }

    #[test]
    fn rows_are_invisible_to_eq_ord_hash_across_tiers() {
        use std::collections::hash_map::DefaultHasher;
        let r = pairs(0..10);
        let g: SetRepr = {
            let _guard = TierGuard::off();
            r.iter().collect()
        };
        assert_eq!(g.tier_label(), "spilled");
        assert_eq!(r, g);
        assert_eq!(r.cmp(&g), Ordering::Equal);
        let hash = |s: &SetRepr| {
            let mut h = DefaultHasher::new();
            s.hash(&mut h);
            h.finish()
        };
        assert_eq!(hash(&r), hash(&g));
        // Ordering against a neighboring set agrees tier-on and tier-off.
        let bigger = pairs(1..11);
        let bigger_g: SetRepr = {
            let _guard = TierGuard::off();
            bigger.iter().collect()
        };
        assert_eq!(r.cmp(&bigger), g.cmp(&bigger_g));
    }

    #[test]
    fn new_rows_is_a_working_empty_set() {
        let mut s = SetRepr::new_rows(2);
        assert_eq!(s.tier_label(), "rows");
        assert!(s.is_empty());
        assert_eq!(s.first(), None);
        assert_eq!(s.pop_first(), None);
        assert!(s.insert(Value::tuple([Value::atom(2), Value::atom(0)])));
        assert!(s.insert(Value::tuple([Value::atom(1), Value::atom(5)])));
        assert!(!s.insert(Value::tuple([Value::atom(2), Value::atom(0)])));
        assert_eq!(s.len(), 2);
        assert_eq!(
            s.first(),
            Some(Value::tuple([Value::atom(1), Value::atom(5)]))
        );
        let same: SetRepr = [[1u64, 5], [2, 0]]
            .into_iter()
            .map(|[a, b]| Value::tuple([Value::atom(a), Value::atom(b)]))
            .collect();
        assert_eq!(s, same);
        // Widening works from the empty row store too.
        let mut s = SetRepr::new_rows(2);
        assert!(s.insert(Value::nat(7)));
        assert_eq!(s.tier_label(), "inline");
        // Arity 0 and tier-off fall back to a plain empty set.
        assert_eq!(SetRepr::new_rows(0).tier_label(), "inline");
        let _guard = TierGuard::off();
        assert_eq!(SetRepr::new_rows(2).tier_label(), "inline");
    }

    #[test]
    fn row_search_narrows_per_column() {
        let cols: Vec<Vec<u32>> = vec![vec![0, 0, 0, 1, 1, 2], vec![0, 3, 5, 0, 4, 2]];
        for (i, row) in [[0, 0], [0, 3], [0, 5], [1, 0], [1, 4], [2, 2]]
            .iter()
            .enumerate()
        {
            let key: Vec<u32> = row.to_vec();
            assert_eq!(row_search(&cols, 0, &key), Ok(i), "{row:?}");
        }
        assert_eq!(row_search(&cols, 0, &[0, 4]), Err(2));
        assert_eq!(row_search(&cols, 0, &[0, 6]), Err(3));
        assert_eq!(row_search(&cols, 0, &[3, 0]), Err(6));
        // A live window offsets every answer.
        assert_eq!(row_search(&cols, 3, &[1, 4]), Ok(1));
        assert_eq!(row_search(&cols, 3, &[0, 0]), Err(0));
    }
}
