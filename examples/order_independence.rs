//! Section 7: order-dependent vs. order-independent queries, the mechanical
//! checker, and the Cai–Fürer–Immerman pairs behind Theorem 7.7.
//!
//! Run with `cargo run -p srl-examples --bin order_independence`.

use srl_analysis::{analyze_order_dependence, OrderVerdict};
use srl_core::dsl::var;
use srl_core::{Env, Program, Value};
use srl_examples::print_header;
use srl_stdlib::hom;
use workloads::cfi::{cfi_pair, BaseGraph};
use workloads::wl::{wl1_equivalent, wl2_equivalent};

fn main() {
    let program = Program::srl();
    let env = Env::new()
        .bind("S", Value::set([Value::atom(2), Value::atom(9)]))
        .bind("P", Value::set([Value::atom(9)]));

    print_header("Purple(First(S)) — the paper's order-dependent query");
    let verdict = analyze_order_dependence(
        &program,
        &hom::purple_first(var("S"), var("P")),
        &env,
        12,
        16,
    );
    match verdict {
        OrderVerdict::ProvedDependent { witness_seed } => {
            println!("proved order-DEPENDENT (witness renaming seed {witness_seed})")
        }
        other => println!("unexpected verdict {other:?}"),
    }

    print_header("EVEN via a proper hom — order-independent");
    let verdict = analyze_order_dependence(&program, &hom::even(var("S")), &env, 12, 8);
    println!("verdict: {verdict:?}");

    print_header("Cai–Fürer–Immerman pairs (Theorem 7.7)");
    for n in [4usize, 6] {
        let (g, h) = cfi_pair(&BaseGraph::cycle(n));
        println!(
            "base C{n}: 1-WL equivalent = {}, components {} vs {} (so non-isomorphic, and a linear-time order-using scan tells them apart)",
            wl1_equivalent(&g.graph, &h.graph),
            g.connected_components(),
            h.connected_components(),
        );
    }
    let (g, h) = cfi_pair(&BaseGraph::k4());
    println!(
        "base K4: 1-WL equivalent = {}, 2-WL equivalent = {} — even two-variable counting logic is blind to the twist",
        wl1_equivalent(&g.graph, &h.graph),
        wl2_equivalent(&g.graph, &h.graph),
    );
}
