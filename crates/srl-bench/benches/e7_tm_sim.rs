//! E7 — Proposition 6.2 / Corollary 6.3: the compiled Turing-machine
//! simulation vs. the native runner; measured growth ~ n², far below the
//! syntactic n⁶ envelope.

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use machines::tm::library::{even_parity, SYM_A, SYM_B};
use srl_core::eval::Evaluator;
use srl_core::limits::EvalLimits;
use srl_stdlib::tm_sim::{compile, encode_input, names, position_domain};

fn bench(c: &mut Criterion) {
    // Compiled once; the measured region is evaluation alone.
    let machine = even_parity();
    let program = compile(&machine);
    let compiled = Arc::new(program.compile());
    let mut group = c.benchmark_group("e7_tm_sim");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(200));
    group.measurement_time(std::time::Duration::from_millis(600));
    for n in [4usize, 8, 16, 32] {
        let input: Vec<u8> = (0..n)
            .map(|i| if i % 3 == 0 { SYM_A } else { SYM_B })
            .collect();
        let args = [position_domain(n), encode_input(&input)];
        let mut ev =
            Evaluator::with_compiled(&program, Arc::clone(&compiled), EvalLimits::benchmark())
                .expect("compiled from this program");
        group.bench_with_input(BenchmarkId::new("srl_simulate", n), &n, |b, _| {
            b.iter(|| {
                ev.reset_stats();
                ev.call(names::SIMULATE, &args).unwrap()
            })
        });
        // Backend axis: the unsuffixed variant above runs the default
        // backend (the bytecode VM); this one pins the reference tree-walk.
        let mut tree =
            Evaluator::with_compiled(&program, Arc::clone(&compiled), EvalLimits::benchmark())
                .expect("compiled from this program")
                .with_backend(srl_core::ExecBackend::TreeWalk);
        group.bench_with_input(BenchmarkId::new("srl_simulate_tree", n), &n, |b, _| {
            b.iter(|| {
                tree.reset_stats();
                tree.call(names::SIMULATE, &args).unwrap()
            })
        });
        group.bench_with_input(BenchmarkId::new("native_tm", n), &n, |b, _| {
            b.iter(|| machine.run(&input, 10_000, false))
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
