//! Regression test: the semantic cost counters are representation-invariant.
//!
//! The zero-copy refactor (Arc-COW values, interned-symbol lowering, borrowed
//! calls) promises that `EvalStats` — the paper's cost model, which the
//! E1–E9 experiments report — is **byte-identical** to the original
//! tree-walking, deep-cloning evaluator. The golden values below were
//! recorded by running the *pre-refactor* seed evaluator on these exact
//! workloads (the same rows `report --json` prints); any drift in
//! `reduce_iterations`, `max_accumulator_weight`, the allocation high-water
//! mark, or baseline agreement is a semantics bug, not a tuning knob.
//!
//! The E5 workload uses the seeded in-repo `rand` shim; its stream is part
//! of the golden contract (see `vendor/README.md`).

use srl_core::eval::{eval_expr_with_stats, run_program};
use srl_core::limits::{EvalLimits, EvalStats};
use srl_core::program::Env;
use srl_core::value::Value;

#[derive(Debug, PartialEq, Eq)]
struct Golden {
    reduce_iterations: u64,
    max_accumulator_weight: usize,
    allocated_leaves: usize,
}

fn golden(stats: &EvalStats) -> Golden {
    Golden {
        reduce_iterations: stats.reduce_iterations,
        max_accumulator_weight: stats.max_accumulator_weight,
        allocated_leaves: stats.max_value_weight,
    }
}

/// E2 — Example 3.12 (powerset blow-up) at n = 8 and n = 12.
#[test]
fn e2_powerset_stats_match_pre_refactor_golden_values() {
    use srl_stdlib::blowup::{names, powerset_program};
    let program = powerset_program();
    for (n, expected) in [
        (
            8u64,
            Golden {
                reduce_iterations: 263,
                max_accumulator_weight: 1281,
                allocated_leaves: 2814,
            },
        ),
        (
            12u64,
            Golden {
                reduce_iterations: 4107,
                max_accumulator_weight: 4097,
                allocated_leaves: 61438,
            },
        ),
    ] {
        let input = Value::set((0..n).map(Value::atom));
        let (value, stats) =
            run_program(&program, names::POWERSET, &[input], EvalLimits::default())
                .expect("powerset evaluates");
        // Baseline agreement: |P(S)| = 2^n.
        assert_eq!(value.len(), Some(1 << n), "powerset cardinality at n={n}");
        assert_eq!(golden(&stats), expected, "E2 stats at n={n}");
    }
}

/// E5 — Corollaries 4.2/4.4 (TC and DTC) on the seeded random digraph the
/// report uses at n = 10.
#[test]
fn e5_tc_dtc_stats_match_pre_refactor_golden_values() {
    use srl_stdlib::tc;
    use workloads::digraph::Digraph;

    let n = 10usize;
    let g = Digraph::random(n, 2.0 / n as f64, 23 + n as u64);
    let env = Env::new()
        .bind("D", g.vertices_value())
        .bind("E", g.edges_value());
    let (tc_value, tc_stats) = eval_expr_with_stats(
        &tc::transitive_closure(srl_core::dsl::var("D"), srl_core::dsl::var("E")),
        &env,
        EvalLimits::benchmark(),
    )
    .expect("TC evaluates");
    let (dtc_value, dtc_stats) = eval_expr_with_stats(
        &tc::deterministic_transitive_closure(srl_core::dsl::var("D"), srl_core::dsl::var("E")),
        &env,
        EvalLimits::benchmark(),
    )
    .expect("DTC evaluates");
    // Baseline agreement, exactly as experiment_e5 checks it.
    assert_eq!(
        Digraph::closure_from_value(&tc_value, n),
        Some(g.transitive_closure()),
        "TC agrees with the native closure"
    );
    assert_eq!(
        Digraph::closure_from_value(&dtc_value, n),
        Some(g.deterministic_transitive_closure()),
        "DTC agrees with the native closure"
    );
    let mut stats = tc_stats;
    stats.absorb(&dtc_stats);
    assert_eq!(
        golden(&stats),
        Golden {
            reduce_iterations: 84991,
            max_accumulator_weight: 4097,
            allocated_leaves: 420298,
        },
        "E5 combined stats at n={n}"
    );
}

/// E3 — BASRL arithmetic (add/mult/bit) over |D| = 16, including the bounded
/// accumulator that witnesses Theorem 4.13's logspace claim.
#[test]
fn e3_basrl_arith_stats_match_pre_refactor_golden_values() {
    use srl_stdlib::arith::{arithmetic_program, domain, names};

    let n = 16u64;
    let program = arithmetic_program();
    let d = domain(n);
    let a = n / 3;
    let b = n / 4;
    let mut total = EvalStats::default();
    for (name, args, expected) in [
        (
            names::ADD,
            vec![a, b],
            Some(Value::atom((a + b).min(n - 1))),
        ),
        (
            names::MULT,
            vec![3, b],
            Some(Value::atom((3 * b).min(n - 1))),
        ),
        (names::BIT, vec![1, a], Some(Value::bool((a >> 1) & 1 == 1))),
    ] {
        let mut call_args = vec![d.clone()];
        call_args.extend(args.iter().map(|&x| Value::atom(x)));
        let (value, stats) = run_program(&program, name, &call_args, EvalLimits::benchmark())
            .expect("arith evaluates");
        assert_eq!(
            Some(value),
            expected,
            "{name} agrees with native arithmetic"
        );
        total.absorb(&stats);
    }
    assert_eq!(
        golden(&total),
        Golden {
            reduce_iterations: 5632,
            max_accumulator_weight: 4,
            allocated_leaves: 571,
        },
        "E3 combined stats at n={n}"
    );
}

/// The refactor's COW discipline must not leak into observable traversal
/// order: rebuilding a set through a reduce yields the ascending order, and
/// `choose`/`rest` still walk minima first even when the set is shared.
#[test]
fn shared_sets_preserve_choose_rest_traversal_order() {
    use srl_core::dsl::*;

    let s = Value::set([Value::atom(5), Value::atom(1), Value::atom(3)]);
    // Two live handles to the same payload: the evaluator's rest() must
    // copy-on-write, not mutate the caller's copy.
    let keep = s.clone();
    let env = Env::new().bind("S", s);
    let (rest_v, _) = eval_expr_with_stats(&rest(var("S")), &env, EvalLimits::default()).unwrap();
    assert_eq!(rest_v, Value::set([Value::atom(3), Value::atom(5)]));
    assert_eq!(keep.len(), Some(3), "the shared input is untouched");
    let (min_v, _) = eval_expr_with_stats(&choose(var("S")), &env, EvalLimits::default()).unwrap();
    assert_eq!(min_v, Value::atom(1));
}
