//! BASRL arithmetic (Proposition 4.5 and Lemma 4.6).
//!
//! Section 4 treats the elements of the ordered domain `D` as numbers: the
//! rank of an element in the traversal order `≤` is its value. On that
//! representation the paper programs `increment`, `decrement`, `ADD`, `MULT`,
//! `EXP`, `SHIFT`, `PARITY`, `REM` and `BIT` in **BASRL** — SRL whose
//! accumulators are bounded-width tuples of set-height 0 — which is the
//! technical heart of `ℒ(BASRL) = L` (Theorem 4.13).
//!
//! This module builds those programs. Every definition takes the domain `D`
//! explicitly (the paper's programs implicitly scan `D`), operates on atoms,
//! and uses only bounded-tuple accumulators, so the whole program
//! type-checks in the BASRL dialect. Arithmetic saturates at the domain
//! boundaries (`increment(max) = max`, `decrement(0) = 0`), which is how the
//! paper says to "take care of the boundary cases".

use srl_core::ast::Expr;
use srl_core::dialect::Dialect;
use srl_core::dsl::*;
use srl_core::program::Program;
use srl_core::value::Value;

/// Names of the definitions produced by [`arithmetic_program`].
pub mod names {
    /// `inc_state(D, a) → [seen, taken, value]` — the raw scan of the paper's
    /// `increment`.
    pub const INC_STATE: &str = "inc_state";
    /// `inc(D, a) → atom` — successor, saturating at the maximum element.
    pub const INC: &str = "inc";
    /// `dec(D, a) → atom` — predecessor, saturating at the minimum element.
    pub const DEC: &str = "dec";
    /// `is_min(D, a) → bool`.
    pub const IS_MIN: &str = "is_min";
    /// `is_max(D, a) → bool`.
    pub const IS_MAX: &str = "is_max";
    /// `add(D, a, b) → atom` — rank addition, saturating at the maximum.
    pub const ADD: &str = "add";
    /// `mult(D, a, b) → atom` — rank multiplication, saturating.
    pub const MULT: &str = "mult";
    /// `exp(D, a, b) → atom` — a^b on ranks, saturating.
    pub const EXP: &str = "exp";
    /// `shift(D, a) → [found, half, parity]` — the paper's SHIFT (divide by
    /// two with remainder).
    pub const SHIFT: &str = "shift";
    /// `parity(D, a) → bool` — true iff the rank of `a` is odd.
    pub const PARITY: &str = "parity";
    /// `rem(D, i, a) → [remaining, value]` — the paper's REM scan;
    /// `value = a >> i`.
    pub const REM: &str = "rem";
    /// `bit(D, i, a) → bool` — the paper's BIT(i, a).
    pub const BIT: &str = "bit";
}

/// Builds the BASRL arithmetic program: a [`Program`] in the BASRL dialect
/// containing all the Section 4 definitions.
pub fn arithmetic_program() -> Program {
    let program = Program::new(Dialect::basrl());

    // is_min(D, a): every element of D is ≥ a.
    let program = program.define(
        names::IS_MIN,
        ["D", "a"],
        set_reduce(
            var("D"),
            lam("d", "a0", leq(var("a0"), var("d"))),
            lam("ok", "acc", and(var("ok"), var("acc"))),
            bool_(true),
            var("a"),
        ),
    );

    // is_max(D, a): every element of D is ≤ a.
    let program = program.define(
        names::IS_MAX,
        ["D", "a"],
        set_reduce(
            var("D"),
            lam("d", "a0", leq(var("d"), var("a0"))),
            lam("ok", "acc", and(var("ok"), var("acc"))),
            bool_(true),
            var("a"),
        ),
    );

    // inc_state(D, a): scan D in ascending order with accumulator
    // [seen_a, taken_next, value]; after the scan, `taken_next` says whether
    // a successor exists and `value` is it (or `a` when none).
    let inc_state_body = set_reduce(
        var("D"),
        lam("d", "a0", tuple([var("d"), eq(var("d"), var("a0"))])),
        lam(
            "p",
            "X",
            if_(
                and(sel(var("X"), 1), not(sel(var("X"), 2))),
                tuple([sel(var("X"), 1), bool_(true), sel(var("p"), 1)]),
                if_(
                    sel(var("p"), 2),
                    tuple([bool_(true), bool_(false), sel(var("X"), 3)]),
                    var("X"),
                ),
            ),
        ),
        tuple([bool_(false), bool_(false), var("a")]),
        var("a"),
    );
    let program = program.define(names::INC_STATE, ["D", "a"], inc_state_body);

    // inc(D, a): the successor value, saturating at the maximum.
    let program = program.define(
        names::INC,
        ["D", "a"],
        let_in(
            "r",
            call(names::INC_STATE, [var("D"), var("a")]),
            if_(sel(var("r"), 2), sel(var("r"), 3), var("a")),
        ),
    );

    // dec(D, a): scan ascending with accumulator [found, predecessor]; the
    // predecessor of the minimum is the minimum itself (saturation).
    let dec_body = set_reduce(
        var("D"),
        lam("d", "a0", tuple([var("d"), eq(var("d"), var("a0"))])),
        lam(
            "p",
            "X",
            if_(
                sel(var("X"), 1),
                var("X"),
                if_(
                    sel(var("p"), 2),
                    tuple([bool_(true), sel(var("X"), 2)]),
                    tuple([bool_(false), sel(var("p"), 1)]),
                ),
            ),
        ),
        tuple([bool_(false), var("a")]),
        var("a"),
    );
    let program = program.define(
        names::DEC,
        ["D", "a"],
        let_in("r", dec_body, sel(var("r"), 2)),
    );

    // add(D, a, b): accumulator [x, y] starting [a, b]; while y is not the
    // minimum, transfer one unit (paper's ADD). |D| iterations suffice.
    let add_body = set_reduce(
        var("D"),
        lam("d", "unused", var("d")),
        lam(
            "d",
            "X",
            if_(
                and(
                    not(call(names::IS_MIN, [var("D"), sel(var("X"), 2)])),
                    not(call(names::IS_MAX, [var("D"), sel(var("X"), 1)])),
                ),
                tuple([
                    call(names::INC, [var("D"), sel(var("X"), 1)]),
                    call(names::DEC, [var("D"), sel(var("X"), 2)]),
                ]),
                var("X"),
            ),
        ),
        tuple([var("a"), var("b")]),
        empty_set(),
    );
    let program = program.define(
        names::ADD,
        ["D", "a", "b"],
        let_in("r", add_body, sel(var("r"), 1)),
    );

    // mult(D, a, b): accumulator [product, counter] starting [0, b]; add `a`
    // while the counter is not the minimum (paper's MULT, with `a` arriving
    // through the extra slot there and through the parameter here).
    let mult_body = set_reduce(
        var("D"),
        lam("d", "unused", var("d")),
        lam(
            "d",
            "X",
            if_(
                not(call(names::IS_MIN, [var("D"), sel(var("X"), 2)])),
                tuple([
                    call(names::ADD, [var("D"), sel(var("X"), 1), var("a")]),
                    call(names::DEC, [var("D"), sel(var("X"), 2)]),
                ]),
                var("X"),
            ),
        ),
        tuple([choose(var("D")), var("b")]),
        empty_set(),
    );
    let program = program.define(
        names::MULT,
        ["D", "a", "b"],
        let_in("r", mult_body, sel(var("r"), 1)),
    );

    // exp(D, a, b): accumulator [power, counter] starting [1, b]; multiply by
    // `a` while the counter is not the minimum (paper's EXP).
    let exp_body = set_reduce(
        var("D"),
        lam("d", "unused", var("d")),
        lam(
            "d",
            "X",
            if_(
                not(call(names::IS_MIN, [var("D"), sel(var("X"), 2)])),
                tuple([
                    call(names::MULT, [var("D"), sel(var("X"), 1), var("a")]),
                    call(names::DEC, [var("D"), sel(var("X"), 2)]),
                ]),
                var("X"),
            ),
        ),
        tuple([call(names::INC, [var("D"), choose(var("D"))]), var("b")]),
        empty_set(),
    );
    let program = program.define(
        names::EXP,
        ["D", "a", "b"],
        let_in("r", exp_body, sel(var("r"), 1)),
    );

    // shift(D, a): find x with 2x = a or 2x + 1 = a, scanning ascending;
    // accumulator [found, half, parity] (paper's SHIFT).
    let shift_body = set_reduce(
        var("D"),
        lam("x", "a0", var("x")),
        lam(
            "x",
            "X",
            if_(
                sel(var("X"), 1),
                var("X"),
                if_(
                    eq(call(names::ADD, [var("D"), var("x"), var("x")]), var("a")),
                    tuple([bool_(true), var("x"), bool_(false)]),
                    if_(
                        eq(
                            call(
                                names::INC,
                                [var("D"), call(names::ADD, [var("D"), var("x"), var("x")])],
                            ),
                            var("a"),
                        ),
                        tuple([bool_(true), var("x"), bool_(true)]),
                        var("X"),
                    ),
                ),
            ),
        ),
        tuple([bool_(false), var("a"), bool_(false)]),
        var("a"),
    );
    let program = program.define(names::SHIFT, ["D", "a"], shift_body);

    // parity(D, a) = SHIFT(a).3.
    let program = program.define(
        names::PARITY,
        ["D", "a"],
        sel(call(names::SHIFT, [var("D"), var("a")]), 3),
    );

    // rem(D, i, a): accumulator [remaining, value]; halve `value` `i` times
    // (paper's REM).
    let rem_body = set_reduce(
        var("D"),
        lam("d", "unused", var("d")),
        lam(
            "d",
            "X",
            if_(
                not(call(names::IS_MIN, [var("D"), sel(var("X"), 1)])),
                tuple([
                    call(names::DEC, [var("D"), sel(var("X"), 1)]),
                    sel(call(names::SHIFT, [var("D"), sel(var("X"), 2)]), 2),
                ]),
                var("X"),
            ),
        ),
        tuple([var("i"), var("a")]),
        empty_set(),
    );
    let program = program.define(names::REM, ["D", "i", "a"], rem_body);

    // bit(D, i, a) = PARITY(REM(i, a).2).
    program.define(
        names::BIT,
        ["D", "i", "a"],
        call(
            names::PARITY,
            [
                var("D"),
                sel(call(names::REM, [var("D"), var("i"), var("a")]), 2),
            ],
        ),
    )
}

/// Builds the SRL value for the ordered domain `{0, …, n-1}`.
pub fn domain(n: u64) -> Value {
    Value::set((0..n).map(Value::atom))
}

/// Convenience expression: the rank-`k` atom as a constant.
pub fn rank(k: u64) -> Expr {
    atom(k)
}

#[cfg(test)]
mod tests {
    use super::names::*;
    use super::*;
    use srl_core::eval::run_program;
    use srl_core::limits::EvalLimits;
    use srl_core::value::Value;

    fn call_arith(name: &str, n: u64, args: &[u64]) -> Value {
        let program = arithmetic_program();
        let mut full_args = vec![domain(n)];
        full_args.extend(args.iter().map(|&a| Value::atom(a)));
        let (value, _) = run_program(&program, name, &full_args, EvalLimits::default())
            .unwrap_or_else(|e| panic!("{name}({args:?}) over domain {n} failed: {e}"));
        value
    }

    fn expect_atom(name: &str, n: u64, args: &[u64], expected: u64) {
        assert_eq!(
            call_arith(name, n, args),
            Value::atom(expected),
            "{name}({args:?}) over domain of size {n}"
        );
    }

    fn expect_bool(name: &str, n: u64, args: &[u64], expected: bool) {
        assert_eq!(
            call_arith(name, n, args),
            Value::bool(expected),
            "{name}({args:?}) over domain of size {n}"
        );
    }

    #[test]
    fn program_is_structurally_valid() {
        let p = arithmetic_program();
        assert!(p.validate().is_ok());
    }

    #[test]
    fn min_max_predicates() {
        expect_bool(IS_MIN, 6, &[0], true);
        expect_bool(IS_MIN, 6, &[1], false);
        expect_bool(IS_MAX, 6, &[5], true);
        expect_bool(IS_MAX, 6, &[4], false);
    }

    #[test]
    fn increment_matches_successor() {
        for a in 0..7 {
            expect_atom(INC, 8, &[a], (a + 1).min(7));
        }
        // Saturation at the top.
        expect_atom(INC, 8, &[7], 7);
    }

    #[test]
    fn decrement_matches_predecessor() {
        for a in 1..8 {
            expect_atom(DEC, 8, &[a], a - 1);
        }
        expect_atom(DEC, 8, &[0], 0);
    }

    #[test]
    fn addition_matches_native() {
        let n = 12;
        for (a, b) in [
            (0u64, 0u64),
            (3, 4),
            (4, 3),
            (0, 7),
            (7, 0),
            (5, 5),
            (11, 0),
        ] {
            expect_atom(ADD, n, &[a, b], (a + b).min(n - 1));
        }
        // Saturation.
        expect_atom(ADD, 8, &[6, 5], 7);
    }

    #[test]
    fn multiplication_matches_native() {
        let n = 20;
        for (a, b) in [(0u64, 5u64), (5, 0), (1, 7), (3, 4), (4, 4), (2, 9)] {
            expect_atom(MULT, n, &[a, b], (a * b).min(n - 1));
        }
    }

    #[test]
    fn exponentiation_matches_native() {
        // EXP is the deepest composition (exp → mult → add → inc/dec), so the
        // interpreted cost grows like n⁴; keep the domain small here and let
        // the benchmark harness sweep larger sizes.
        let n = 12;
        for (a, b) in [(2u64, 0u64), (2, 3), (3, 2), (2, 2), (1, 9)] {
            expect_atom(EXP, n, &[a, b], a.pow(b as u32).min(n - 1));
        }
    }

    #[test]
    fn shift_and_parity() {
        let n = 16;
        for a in 0..n {
            let v = call_arith(SHIFT, n, &[a]);
            let t = v.as_tuple().expect("shift returns a triple");
            assert_eq!(t[1], Value::atom(a / 2), "half of {a}");
            assert_eq!(t[2], Value::bool(a % 2 == 1), "parity of {a}");
        }
        expect_bool(PARITY, 16, &[6], false);
        expect_bool(PARITY, 16, &[7], true);
        expect_bool(PARITY, 16, &[0], false);
    }

    #[test]
    fn rem_shifts_right() {
        let n = 16;
        for (i, a) in [(0u64, 13u64), (1, 13), (2, 13), (3, 13), (2, 11)] {
            let v = call_arith(REM, n, &[i, a]);
            let t = v.as_tuple().expect("rem returns a pair");
            assert_eq!(t[1], Value::atom(a >> i), "{a} >> {i}");
        }
    }

    #[test]
    fn bit_matches_binary_representation() {
        let n = 16;
        for a in [0u64, 5, 10, 13] {
            for i in 0..4u64 {
                expect_bool(BIT, n, &[i, a], (a >> i) & 1 == 1);
            }
        }
    }

    #[test]
    fn accumulators_stay_bounded_as_n_grows() {
        // The logspace signature: the largest accumulator passed between
        // iterations does not grow with the domain (Theorem 4.13).
        let program = arithmetic_program();
        let mut widths = Vec::new();
        for n in [8u64, 16, 32] {
            let (_, stats) = run_program(
                &program,
                ADD,
                &[domain(n), Value::atom(3), Value::atom(n - 5)],
                EvalLimits::default(),
            )
            .unwrap();
            widths.push(stats.max_accumulator_weight);
        }
        assert_eq!(widths[0], widths[1]);
        assert_eq!(widths[1], widths[2]);
        assert!(
            widths[0] <= 8,
            "accumulators are small tuples, got {widths:?}"
        );
    }
}
